"""Graph property extraction for Tables II, III, and IX.

Table IX correlates the race-free speedup with the edge count, vertex
count, and average degree of the input graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.csr import CSRGraph


@dataclass(frozen=True)
class GraphProperties:
    """The per-input columns of Tables II and III."""

    name: str
    num_edges: int
    num_vertices: int
    kind: str
    d_avg: float
    d_max: int

    def as_row(self) -> tuple[str, int, int, str, float, int]:
        """The row layout of Table II/III."""
        return (self.name, self.num_edges, self.num_vertices, self.kind,
                self.d_avg, self.d_max)


def compute_properties(graph: CSRGraph, kind: str = "") -> GraphProperties:
    """Compute Table II/III-style properties of ``graph``."""
    degrees = graph.degrees()
    n = graph.num_vertices
    return GraphProperties(
        name=graph.name,
        num_edges=graph.num_edges,
        num_vertices=n,
        kind=kind,
        d_avg=float(graph.num_edges) / n if n else 0.0,
        d_max=int(degrees.max()) if n else 0,
    )
