"""Compressed-sparse-row graph representation.

This mirrors the ECL graph format used by every code in the paper: a
``row_offsets`` array of length ``n + 1`` and a ``col_indices`` array of
length ``m`` (directed edge count).  Undirected graphs store each edge
in both directions, which is why Table II's edge counts are twice the
undirected edge count.

Optional integer edge weights support MST and APSP.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import GraphError


class CSRGraph:
    """An immutable graph in CSR form.

    Parameters
    ----------
    row_offsets:
        ``int64`` array of length ``num_vertices + 1``; monotonically
        non-decreasing, starting at 0 and ending at ``num_edges``.
    col_indices:
        ``int32`` array of neighbor ids, grouped per source vertex.
    directed:
        Whether the graph is directed.  Undirected graphs must contain
        both ``(u, v)`` and ``(v, u)`` for every edge.
    weights:
        Optional ``int64`` array parallel to ``col_indices``.
    name:
        Optional label used in reports.
    """

    def __init__(
        self,
        row_offsets: np.ndarray,
        col_indices: np.ndarray,
        directed: bool,
        weights: np.ndarray | None = None,
        name: str = "",
    ) -> None:
        self.row_offsets = np.ascontiguousarray(row_offsets, dtype=np.int64)
        self.col_indices = np.ascontiguousarray(col_indices, dtype=np.int32)
        self.directed = bool(directed)
        self.weights = (
            None if weights is None else np.ascontiguousarray(weights, dtype=np.int64)
        )
        self.name = name
        self._validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        directed: bool,
        weights: Iterable[int] | np.ndarray | None = None,
        name: str = "",
        symmetrize: bool = False,
        dedupe: bool = True,
    ) -> "CSRGraph":
        """Build a CSR graph from an edge list.

        With ``symmetrize=True`` every edge ``(u, v)`` also inserts
        ``(v, u)`` (with the same weight); self-loops are dropped and,
        with ``dedupe=True`` (the default), parallel edges collapse to
        one (keeping the minimum weight, as MST semantics require).
        """
        edge_arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise GraphError(f"edge array must have shape (m, 2), got {edge_arr.shape}")
        src = edge_arr[:, 0].astype(np.int64)
        dst = edge_arr[:, 1].astype(np.int64)
        if weights is None:
            wgt = None
        else:
            wgt = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights,
                             dtype=np.int64)
            if wgt.shape[0] != src.shape[0]:
                raise GraphError("weights length must match edge count")

        if symmetrize:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
            if wgt is not None:
                wgt = np.concatenate([wgt, wgt])

        keep = src != dst  # drop self-loops
        src, dst = src[keep], dst[keep]
        if wgt is not None:
            wgt = wgt[keep]

        if src.size and (src.min() < 0 or dst.min() < 0):
            raise GraphError("negative vertex id in edge list")
        if src.size and max(src.max(), dst.max()) >= num_vertices:
            raise GraphError(
                f"vertex id exceeds num_vertices={num_vertices} in edge list"
            )

        if dedupe and src.size:
            key = src * np.int64(num_vertices) + dst
            order = np.argsort(key, kind="stable")
            key = key[order]
            src, dst = src[order], dst[order]
            if wgt is not None:
                wgt = wgt[order]
                # keep minimum weight among duplicates: within equal keys,
                # sort by weight then take the first occurrence
                suborder = np.lexsort((wgt, key))
                key, src, dst, wgt = key[suborder], src[suborder], dst[suborder], wgt[suborder]
            first = np.ones(key.shape[0], dtype=bool)
            first[1:] = key[1:] != key[:-1]
            src, dst = src[first], dst[first]
            if wgt is not None:
                wgt = wgt[first]

        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if wgt is not None:
            wgt = wgt[order]

        row_offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        counts = np.bincount(src, minlength=num_vertices)
        row_offsets[1:] = np.cumsum(counts)
        return cls(row_offsets, dst.astype(np.int32), directed=directed,
                   weights=wgt, name=name)

    @classmethod
    def empty(cls, num_vertices: int, directed: bool = False, name: str = "") -> "CSRGraph":
        """An edgeless graph on ``num_vertices`` vertices."""
        return cls(
            np.zeros(num_vertices + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int32),
            directed=directed,
            name=name,
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.row_offsets.shape[0] - 1

    @property
    def num_edges(self) -> int:
        """Directed edge count (Table II/III convention)."""
        return self.col_indices.shape[0]

    @property
    def has_weights(self) -> bool:
        return self.weights is not None

    def fingerprint(self) -> str:
        """Stable content digest of the graph (structure + weights).

        Two graphs share a fingerprint iff they have identical CSR
        arrays, weights, and direction — names are *not* included, so
        the study framework can detect two different graphs trying to
        reuse one name.  Cached: the graph is immutable by contract.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            import hashlib

            h = hashlib.sha256()
            h.update(b"directed" if self.directed else b"undirected")
            h.update(self.row_offsets.tobytes())
            h.update(self.col_indices.tobytes())
            if self.weights is not None:
                h.update(self.weights.tobytes())
            cached = h.hexdigest()
            self._fingerprint = cached
        return cached

    def degree(self, v: int) -> int:
        """Out-degree of ``v``."""
        self._check_vertex(v)
        return int(self.row_offsets[v + 1] - self.row_offsets[v])

    def neighbors(self, v: int) -> np.ndarray:
        """View of ``v``'s neighbor ids (do not mutate)."""
        self._check_vertex(v)
        return self.col_indices[self.row_offsets[v]:self.row_offsets[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        """View of weights of ``v``'s out-edges."""
        if self.weights is None:
            raise GraphError(f"graph {self.name!r} has no weights")
        self._check_vertex(v)
        return self.weights[self.row_offsets[v]:self.row_offsets[v + 1]]

    def degrees(self) -> np.ndarray:
        """Out-degrees of every vertex as an ``int64`` array."""
        return np.diff(self.row_offsets)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate all directed edges as ``(u, v)`` pairs."""
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                yield u, int(v)

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(sources, destinations)`` arrays of every edge."""
        sources = np.repeat(
            np.arange(self.num_vertices, dtype=np.int32), self.degrees()
        )
        return sources, self.col_indices.copy()

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "CSRGraph":
        """Transpose (reverse every edge).  Needed by SCC's backward pass."""
        src, dst = self.edge_array()
        return CSRGraph.from_edges(
            self.num_vertices,
            np.stack([dst.astype(np.int64), src.astype(np.int64)], axis=1),
            directed=self.directed,
            weights=self.weights,
            name=f"{self.name}^T" if self.name else "",
            dedupe=False,
        )

    def with_weights(self, weights: np.ndarray) -> "CSRGraph":
        """Copy of this graph carrying the given per-edge weights."""
        return CSRGraph(self.row_offsets, self.col_indices, self.directed,
                        weights=weights, name=self.name)

    def with_random_weights(self, seed: int, max_weight: int = 10_000) -> "CSRGraph":
        """Copy with symmetric pseudo-random integer weights in [1, max_weight].

        The weight of an undirected edge is derived from the unordered
        vertex pair so that both CSR directions carry the same weight —
        a requirement for MST correctness.
        """
        src, dst = self.edge_array()
        lo = np.minimum(src, dst).astype(np.uint64)
        hi = np.maximum(src, dst).astype(np.uint64)
        with np.errstate(over="ignore"):
            mix = (lo * np.uint64(0x9E3779B97F4A7C15)
                   + hi * np.uint64(0xC2B2AE3D27D4EB4F))
            mix ^= np.uint64((seed * 0xD6E8FEB86659FD93) & 0xFFFFFFFFFFFFFFFF)
            mix ^= mix >> np.uint64(33)
            mix *= np.uint64(0xFF51AFD7ED558CCD)
            mix ^= mix >> np.uint64(33)
        weights = (mix % np.uint64(max_weight)).astype(np.int64) + 1
        return self.with_weights(weights)

    def to_networkx(self):
        """Convert to a networkx graph (for verification only)."""
        import networkx as nx

        g = nx.DiGraph() if self.directed else nx.Graph()
        g.add_nodes_from(range(self.num_vertices))
        src, dst = self.edge_array()
        if self.weights is not None:
            g.add_weighted_edges_from(
                zip(src.tolist(), dst.tolist(), self.weights.tolist())
            )
        else:
            g.add_edges_from(zip(src.tolist(), dst.tolist()))
        return g

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range [0, {self.num_vertices})")

    def _validate(self) -> None:
        off = self.row_offsets
        if off.ndim != 1 or off.shape[0] < 1:
            raise GraphError("row_offsets must be a 1-D array of length >= 1")
        if off[0] != 0:
            raise GraphError("row_offsets must start at 0")
        if np.any(np.diff(off) < 0):
            raise GraphError("row_offsets must be non-decreasing")
        if off[-1] != self.col_indices.shape[0]:
            raise GraphError(
                f"row_offsets end ({off[-1]}) != edge count ({self.col_indices.shape[0]})"
            )
        if self.col_indices.size:
            if self.col_indices.min() < 0 or self.col_indices.max() >= self.num_vertices:
                raise GraphError("col_indices contains out-of-range vertex id")
        if self.weights is not None and self.weights.shape[0] != self.num_edges:
            raise GraphError("weights length must equal edge count")

    def check_symmetric(self) -> bool:
        """True iff for every edge (u, v) the reverse edge (v, u) exists."""
        src, dst = self.edge_array()
        fwd = set(zip(src.tolist(), dst.tolist()))
        return all((v, u) in fwd for (u, v) in fwd)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<CSRGraph{label} {kind} |V|={self.num_vertices} |E|={self.num_edges}"
            f"{' weighted' if self.has_weights else ''}>"
        )
