"""The paper's input suite (Tables II and III) as scaled synthetic recipes.

Each entry pairs the paper's reported properties with a generator call
that reproduces the graph family at roughly 1/256 of the original
vertex count (capped so the largest inputs stay tractable in a Python
simulator).  The relative size ordering of the suite is preserved, which
is what the size-vs-speedup analysis in Section VI.B depends on.

``load_suite_graph(name, scale=...)`` is memoized; pass a different
``scale`` to grow or shrink every input proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.csr import CSRGraph


@dataclass(frozen=True)
class SuiteEntry:
    """One row of Table II or III plus its synthetic recipe."""

    name: str
    kind: str
    directed: bool
    paper_vertices: int
    paper_edges: int
    paper_d_avg: float
    paper_d_max: int
    builder: Callable[[float], CSRGraph]


def _sz(base: int, scale: float, minimum: int = 512) -> int:
    return max(minimum, int(base * scale))


def _entry(name: str, kind: str, directed: bool, pv: int, pe: int,
           d_avg: float, d_max: int,
           builder: Callable[[float], CSRGraph]) -> SuiteEntry:
    return SuiteEntry(name, kind, directed, pv, pe, d_avg, d_max, builder)


# scaled vertex counts: paper vertices / 256, capped at ~98k
UNDIRECTED_SUITE: tuple[SuiteEntry, ...] = (
    _entry("2d-2e20.sym", "grid", False, 1_048_576, 4_190_208, 4.0, 4,
           lambda s: gen.grid2d(max(16, int(64 * s ** 0.5)), name="2d-2e20.sym")),
    _entry("amazon0601", "co-purchases", False, 403_394, 4_886_816, 12.1, 2_752,
           lambda s: gen.preferential_attachment(_sz(1576, s), 6, seed=601,
                                                 name="amazon0601")),
    _entry("as-skitter", "Internet topology", False, 1_696_415, 22_190_596,
           13.1, 35_455,
           lambda s: gen.web_graph(_sz(6627, s), 13.1, seed=71,
                                   name="as-skitter")),
    _entry("citationCiteseer", "publication citations", False, 268_495,
           2_313_294, 8.6, 1_318,
           lambda s: gen.preferential_attachment(_sz(1049, s), 4, seed=17,
                                                 name="citationCiteseer")),
    _entry("cit-Patents", "patent citations", False, 3_774_768, 33_037_894,
           8.8, 793,
           lambda s: gen.preferential_attachment(_sz(14745, s), 4, seed=23,
                                                 name="cit-Patents")),
    _entry("coPapersDBLP", "publication citations", False, 540_486,
           30_491_458, 56.4, 3_299,
           lambda s: gen.copaper_graph(_sz(2111, s), 56.4, seed=31,
                                       name="coPapersDBLP")),
    _entry("delaunay_n24", "triangulation", False, 16_777_216, 100_663_202,
           6.0, 26,
           lambda s: gen.delaunay(_sz(65536, s), seed=24, name="delaunay_n24")),
    _entry("europe_osm", "roadmap", False, 50_912_018, 108_109_320, 2.1, 13,
           lambda s: gen.roadmap(_sz(98304, s), seed=37, extra_fraction=0.03,
                                 name="europe_osm")),
    _entry("in-2004", "weblinks", False, 1_382_908, 27_182_946, 19.7, 21_869,
           lambda s: gen.web_graph(_sz(5402, s), 19.7, seed=41,
                                   name="in-2004")),
    _entry("internet", "Internet topology", False, 124_651, 387_240, 3.1, 151,
           lambda s: gen.internet_topology(_sz(512, s), seed=43,
                                           name="internet")),
    _entry("kron_g500-logn21", "Kronecker", False, 2_097_152, 182_081_864,
           86.8, 213_904,
           lambda s: gen.kronecker(13 + _scale_bits(s), 43, seed=47,
                                   name="kron_g500-logn21")),
    _entry("r4-2e23.sym", "random", False, 8_388_608, 67_108_846, 8.0, 26,
           lambda s: gen.random_uniform(_sz(32768, s), 8.0, seed=53,
                                        name="r4-2e23.sym")),
    _entry("rmat16.sym", "RMAT", False, 65_536, 967_866, 14.8, 569,
           lambda s: gen.rmat(9 + _scale_bits(s), 8, seed=59,
                              name="rmat16.sym")),
    _entry("rmat22.sym", "RMAT", False, 4_194_304, 65_660_814, 15.7, 3_687,
           lambda s: gen.rmat(14 + _scale_bits(s), 8, seed=61,
                              name="rmat22.sym")),
    _entry("soc-LiveJournal1", "community", False, 4_847_571, 85_702_474,
           17.7, 20_333,
           lambda s: gen.community_graph(_sz(18935, s), 17.7, 96, seed=67,
                                         name="soc-LiveJournal1")),
    _entry("USA-road-d.NY", "roadmap", False, 264_346, 730_100, 2.8, 8,
           lambda s: gen.roadmap(_sz(1032, s), seed=73, extra_fraction=0.35,
                                 name="USA-road-d.NY")),
    _entry("USA-road-d.USA", "roadmap", False, 23_947_347, 57_708_624, 2.4, 9,
           lambda s: gen.roadmap(_sz(93544, s), seed=79, extra_fraction=0.15,
                                 name="USA-road-d.USA")),
)

DIRECTED_SUITE: tuple[SuiteEntry, ...] = (
    _entry("cage14", "power-law", True, 1_505_785, 27_130_349, 18.02, 41,
           lambda s: gen.cage_graph(_sz(5882, s), seed=83, name="cage14")),
    _entry("circuit5M", "power-law", True, 5_558_326, 59_524_291, 10.71,
           1_290_501,
           lambda s: gen.circuit_graph(_sz(21712, s), seed=89,
                                       name="circuit5M")),
    _entry("cold-flow", "mesh", True, 2_112_512, 6_295_941, 2.98, 5,
           lambda s: gen.layered_flow(_sz(8252, s), seed=97,
                                      name="cold-flow")),
    _entry("flickr", "power-law", True, 820_878, 9_837_214, 11.98, 10_272,
           lambda s: gen.directed_powerlaw(_sz(3206, s), 11.98, seed=101,
                                           name="flickr")),
    _entry("klein-bottle", "mesh", True, 8_388_608, 18_793_715, 2.24, 4,
           lambda s: gen.klein_bottle_mesh(
               max(32, int(256 * s ** 0.5)), max(16, int(128 * s ** 0.5)),
               name="klein-bottle")),
    _entry("star", "mesh", True, 327_680, 654_080, 2.00, 2,
           lambda s: gen.star_mesh(_sz(1280, s), name="star")),
    _entry("toroid-hex", "mesh", True, 1_572_864, 4_684_142, 2.98, 4,
           lambda s: gen.directed_torus(
               max(16, int(96 * s ** 0.5)), max(16, int(64 * s ** 0.5)),
               chord=3, name="toroid-hex")),
    _entry("toroid-wedge", "mesh", True, 196_608, 487_798, 2.48, 4,
           lambda s: gen.directed_torus(
               max(8, int(32 * s ** 0.5)), max(8, int(24 * s ** 0.5)),
               chord=0, name="toroid-wedge")),
    _entry("web-Google", "power-law", True, 916_428, 5_105_039, 5.57, 456,
           lambda s: gen.directed_powerlaw(_sz(3579, s), 5.57, seed=103,
                                           name="web-Google")),
    _entry("wikipedia", "power-law", True, 3_148_440, 39_383_235, 12.51,
           6_576,
           lambda s: gen.directed_powerlaw(_sz(12298, s), 12.51, seed=107,
                                           name="wikipedia")),
)

_BY_NAME: dict[str, SuiteEntry] = {
    e.name: e for e in UNDIRECTED_SUITE + DIRECTED_SUITE
}


def _scale_bits(scale: float) -> int:
    """Extra log2 levels for generators parameterized by scale exponent."""
    bits = 0
    while scale >= 2.0:
        scale /= 2.0
        bits += 1
    while scale <= 0.5 and bits > -4:
        scale *= 2.0
        bits -= 1
    return bits


def suite_names(directed: bool | None = None) -> list[str]:
    """Names of the suite inputs, optionally filtered by direction."""
    entries = UNDIRECTED_SUITE + DIRECTED_SUITE
    if directed is not None:
        entries = tuple(e for e in entries if e.directed == directed)
    return [e.name for e in entries]


def suite_entry(name: str) -> SuiteEntry:
    """Look up a suite entry by its paper name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise GraphError(
            f"unknown suite graph {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


@lru_cache(maxsize=256)
def load_suite_graph(name: str, scale: float = 1.0) -> CSRGraph:
    """Build (and memoize) the scaled synthetic analog of a paper input.

    The cache is process-wide and shared by every study, sweep worker
    task, and bench module in the process — a multi-study session (or
    a pool worker serving many cells) builds each (name, scale) CSR
    exactly once.
    """
    return suite_entry(name).builder(scale)


#: (graph fingerprint, weight seed) -> weighted copy.  Process-wide,
#: content-keyed: every study requesting weights for the same graph —
#: MST and APSP re-prepare per (device, variant) run — shares one
#: weighted instance instead of regenerating and re-hashing the arrays.
_WEIGHTED_CACHE: dict[tuple[str, int], CSRGraph] = {}


def weighted_graph(graph: CSRGraph, seed: int = 12345) -> CSRGraph:
    """``graph.with_random_weights(seed)``, cached by graph content."""
    if graph.has_weights:
        return graph
    key = (graph.fingerprint(), seed)
    cached = _WEIGHTED_CACHE.get(key)
    if cached is None:
        cached = graph.with_random_weights(seed=seed)
        _WEIGHTED_CACHE[key] = cached
    return cached
