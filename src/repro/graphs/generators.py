"""Synthetic graph generators standing in for the paper's inputs.

The paper evaluates on 17 undirected (Table II) and 10 directed
(Table III) real-world and synthetic graphs spanning grids, roadmaps,
triangulations, RMAT/Kronecker graphs, citation/co-purchase/community
networks, internet topologies, and finite-element meshes.  We cannot
ship the originals (multi-GB downloads; no network), so each family has
a generator here that reproduces its *structural regime*: degree
distribution (average and skew), diameter class (mesh-like vs.
small-world), and — for the directed inputs — the SCC structure that
drives the ECL-SCC workload (mesh graphs: few large components;
power-law graphs: one giant component plus many trivial ones).

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _edges_to_graph(
    n: int,
    edges: np.ndarray,
    name: str,
    directed: bool,
    symmetrize: bool,
) -> CSRGraph:
    return CSRGraph.from_edges(
        n, edges, directed=directed, symmetrize=symmetrize, name=name
    )


# ----------------------------------------------------------------------
# Regular / mesh-like undirected families
# ----------------------------------------------------------------------

def grid2d(side: int, name: str = "") -> CSRGraph:
    """A ``side`` x ``side`` 4-neighbor grid (the ``2d-2e20.sym`` family)."""
    if side < 2:
        raise GraphError(f"grid side must be >= 2, got {side}")
    idx = np.arange(side * side, dtype=np.int64).reshape(side, side)
    horiz = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1)
    vert = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1)
    edges = np.concatenate([horiz, vert])
    return _edges_to_graph(side * side, edges, name or f"grid2d-{side}",
                           directed=False, symmetrize=True)


def roadmap(n: int, seed: int = 0, extra_fraction: float = 0.12,
            name: str = "") -> CSRGraph:
    """A sparse road-network analog (``europe_osm`` / ``USA-road`` family).

    Built as a random spanning tree of a 2-D grid plus a small fraction
    of the remaining grid edges, yielding an average degree near 2.1-2.8
    and a very large diameter — the regime of the OSM/USA road inputs.
    """
    side = max(2, int(np.sqrt(n)))
    grid = grid2d(side)
    rng = _rng(seed)
    src, dst = grid.edge_array()
    keep = src < dst  # one direction per undirected edge
    src, dst = src[keep], dst[keep]
    order = rng.permutation(src.shape[0])
    src, dst = src[order], dst[order]

    parent = np.arange(side * side, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    tree_edges = []
    extra_edges = []
    for u, v in zip(src.tolist(), dst.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            tree_edges.append((u, v))
        else:
            extra_edges.append((u, v))
    n_extra = int(len(extra_edges) * extra_fraction)
    edges = np.array(tree_edges + extra_edges[:n_extra], dtype=np.int64)
    return _edges_to_graph(side * side, edges, name or f"roadmap-{side * side}",
                           directed=False, symmetrize=True)


def delaunay(n: int, seed: int = 0, name: str = "") -> CSRGraph:
    """A Delaunay triangulation of random points (``delaunay_n24`` family).

    Average degree ~6, planar, mesh-like — matching Table II's entry.
    """
    from scipy.spatial import Delaunay

    rng = _rng(seed)
    points = rng.random((n, 2))
    tri = Delaunay(points)
    simplices = tri.simplices.astype(np.int64)
    edges = np.concatenate([
        simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]
    ])
    return _edges_to_graph(n, edges, name or f"delaunay-{n}",
                           directed=False, symmetrize=True)


def random_uniform(n: int, avg_degree: float, seed: int = 0,
                   name: str = "") -> CSRGraph:
    """Uniform random graph (the ``r4-2e23.sym`` family).

    Each of ``n * avg_degree / 2`` undirected edges picks endpoints
    uniformly; the resulting degree distribution is binomial (d-max a
    small multiple of d-avg, as in Table II).
    """
    rng = _rng(seed)
    m = int(n * avg_degree / 2)
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    return _edges_to_graph(n, edges, name or f"random-{n}",
                           directed=False, symmetrize=True)


# ----------------------------------------------------------------------
# Power-law / small-world undirected families
# ----------------------------------------------------------------------

def rmat(scale: int, edge_factor: int, seed: int = 0,
         a: float = 0.57, b: float = 0.19, c: float = 0.19,
         directed: bool = False, name: str = "") -> CSRGraph:
    """Recursive-matrix (RMAT) graph (``rmat16/22``, and with skewed
    parameters the ``kron_g500`` Graph500 family).

    ``n = 2**scale`` vertices and ``n * edge_factor`` edge samples
    distributed by recursive quadrant choice with probabilities
    ``(a, b, c, 1-a-b-c)``.
    """
    if not 0 < a + b + c < 1:
        raise GraphError("rmat probabilities must satisfy 0 < a+b+c < 1")
    n = 1 << scale
    m = n * edge_factor
    rng = _rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # quadrant: 0 = (0,0), 1 = (0,1), 2 = (1,0), 3 = (1,1)
        go_right = (r >= a) & (r < a + b) | (r >= a + b + c)
        go_down = r >= a + b
        src = (src << 1) | go_down.astype(np.int64)
        dst = (dst << 1) | go_right.astype(np.int64)
    edges = np.stack([src, dst], axis=1)
    return _edges_to_graph(n, edges, name or f"rmat-{scale}",
                           directed=directed, symmetrize=not directed)


def kronecker(scale: int, edge_factor: int, seed: int = 0,
              name: str = "") -> CSRGraph:
    """Graph500-style Kronecker graph: RMAT with the standard skewed
    (0.57, 0.19, 0.19) parameters and a large edge factor, yielding the
    extreme hubs of ``kron_g500-logn21`` (d-max ~100x d-avg)."""
    return rmat(scale, edge_factor, seed=seed, a=0.65, b=0.16, c=0.16,
                name=name or f"kron-{scale}")


def preferential_attachment(n: int, m: int, seed: int = 0,
                            name: str = "") -> CSRGraph:
    """Barabasi-Albert preferential attachment (citation / co-purchase
    networks: ``amazon0601``, ``citationCiteseer``, ``cit-Patents``).

    Every new vertex attaches to ``m`` existing vertices chosen
    proportionally to degree, giving a power-law tail with moderate
    maximum degree.
    """
    if m < 1 or n <= m:
        raise GraphError(f"need n > m >= 1, got n={n}, m={m}")
    rng = _rng(seed)
    pool = np.zeros(2 * n * m, dtype=np.int64)
    pool_size = 0
    # seed clique among the first m + 1 vertices
    seeds = []
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            seeds.append((u, v))
            pool[pool_size] = u
            pool[pool_size + 1] = v
            pool_size += 2
    edges = [np.array(seeds, dtype=np.int64)]
    batch = []
    for u in range(m + 1, n):
        picks = pool[rng.integers(0, pool_size, size=m)]
        for v in np.unique(picks):
            batch.append((u, v))
            pool[pool_size] = u
            pool[pool_size + 1] = v
            pool_size += 2
    if batch:
        edges.append(np.array(batch, dtype=np.int64))
    return _edges_to_graph(n, np.concatenate(edges),
                           name or f"pa-{n}-{m}", directed=False,
                           symmetrize=True)


def internet_topology(n: int, seed: int = 0, name: str = "") -> CSRGraph:
    """AS-level internet topology analog (``internet``, ``as-skitter``).

    Preferential attachment with m alternating between 1 and 2 plus a
    sprinkle of peering edges among high-degree vertices; average degree
    ~3 with a heavy tail.
    """
    rng = _rng(seed)
    base = preferential_attachment(n, 1, seed=seed)
    src, dst = base.edge_array()
    keep = src < dst
    edges = [np.stack([src[keep].astype(np.int64),
                       dst[keep].astype(np.int64)], axis=1)]
    # extra multi-homing edges for half the vertices
    extra_n = n // 2
    u = rng.integers(n // 4, n, size=extra_n, dtype=np.int64)
    # peer preferentially with low ids (the early, high-degree vertices)
    v = (rng.pareto(1.5, size=extra_n) * 8).astype(np.int64) % np.maximum(u, 1)
    edges.append(np.stack([u, v], axis=1))
    return _edges_to_graph(n, np.concatenate(edges),
                           name or f"internet-{n}", directed=False,
                           symmetrize=True)


def community_graph(n: int, avg_degree: float, communities: int,
                    seed: int = 0, name: str = "") -> CSRGraph:
    """Community-structured social network (``soc-LiveJournal1`` family).

    Vertices are split into power-law-sized communities; ~90 % of edges
    are intra-community (degree-skewed), 10 % global.
    """
    rng = _rng(seed)
    m = int(n * avg_degree / 2)
    # power-law community sizes
    raw = rng.pareto(1.2, size=communities) + 1.0
    bounds = np.concatenate([[0], np.cumsum(raw / raw.sum())]) * n
    bounds = bounds.astype(np.int64)
    bounds[-1] = n
    intra = int(m * 0.9)
    comm_of_edge = rng.integers(0, communities, size=intra)
    lo = bounds[comm_of_edge]
    hi = np.maximum(bounds[comm_of_edge + 1], lo + 2)
    span = hi - lo
    # skewed endpoint choice inside the community: square a uniform
    u = lo + ((rng.random(intra) ** 2) * span).astype(np.int64)
    v = lo + (rng.random(intra) * span).astype(np.int64)
    inter = m - intra
    gu = rng.integers(0, n, size=inter, dtype=np.int64)
    gv = ((rng.random(inter) ** 2) * n).astype(np.int64)
    edges = np.stack([np.concatenate([u, gu]), np.concatenate([v, gv])], axis=1)
    edges = np.clip(edges, 0, n - 1)
    return _edges_to_graph(n, edges, name or f"community-{n}",
                           directed=False, symmetrize=True)


def web_graph(n: int, avg_degree: float, seed: int = 0,
              directed: bool = False, name: str = "") -> CSRGraph:
    """Web-link graph analog (``in-2004``; directed: ``web-Google``,
    ``wikipedia``, ``flickr``).

    Host-clustered power-law: pages belong to hosts (runs of ids); most
    links are intra-host plus hub-directed global links, producing the
    high clustering and heavy tail of crawled web graphs.
    """
    rng = _rng(seed)
    m = int(n * avg_degree / (1 if directed else 2))
    host_size = 32
    intra = int(m * 0.7)
    page = rng.integers(0, n, size=intra, dtype=np.int64)
    offset = rng.integers(1, host_size, size=intra, dtype=np.int64)
    target = (page // host_size) * host_size + offset
    target = np.minimum(target, n - 1)
    inter = m - intra
    gu = rng.integers(0, n, size=inter, dtype=np.int64)
    gv = ((rng.random(inter) ** 3) * n).astype(np.int64)  # strong hubs
    edges = np.stack([np.concatenate([page, gu]),
                      np.concatenate([target, gv])], axis=1)
    return _edges_to_graph(n, edges, name or f"web-{n}",
                           directed=directed, symmetrize=not directed)


def copaper_graph(n: int, avg_degree: float, seed: int = 0,
                  name: str = "") -> CSRGraph:
    """Co-authorship clique expansion (``coPapersDBLP``: d-avg 56).

    Papers become cliques over their authors, which is why co-paper
    graphs have very high average degree; we sample power-law-sized
    cliques until the edge budget is met.
    """
    rng = _rng(seed)
    target_m = int(n * avg_degree / 2)
    edges = []
    total = 0
    while total < target_m:
        size = min(2 + int(rng.pareto(1.6) * 4), 40)
        members = rng.integers(0, n, size=size, dtype=np.int64)
        iu, iv = np.triu_indices(size, k=1)
        edges.append(np.stack([members[iu], members[iv]], axis=1))
        total += iu.shape[0]
    return _edges_to_graph(n, np.concatenate(edges),
                           name or f"copaper-{n}", directed=False,
                           symmetrize=True)


# ----------------------------------------------------------------------
# Directed families for SCC (Table III)
# ----------------------------------------------------------------------

def directed_torus(width: int, height: int, chord: int = 0,
                   name: str = "") -> CSRGraph:
    """A directed torus mesh (``toroid-hex`` / ``toroid-wedge`` family).

    Every vertex points right and down with wraparound, so the whole
    torus is one large SCC with a large diameter — the mesh regime where
    ECL-SCC's max-ID propagation runs many rounds.  ``chord`` adds a
    third out-edge skipping ``chord`` columns (hex-like connectivity,
    raising d-avg towards 3).
    """
    n = width * height
    idx = np.arange(n, dtype=np.int64).reshape(height, width)
    right = np.stack([idx.ravel(), np.roll(idx, -1, axis=1).ravel()], axis=1)
    down = np.stack([idx.ravel(), np.roll(idx, -1, axis=0).ravel()], axis=1)
    parts = [right, down]
    if chord > 0:
        skip = np.stack([idx.ravel(), np.roll(idx, -chord, axis=1).ravel()],
                        axis=1)
        parts.append(skip)
    return _edges_to_graph(n, np.concatenate(parts),
                           name or f"torus-{width}x{height}", directed=True,
                           symmetrize=False)


def klein_bottle_mesh(width: int, height: int, name: str = "") -> CSRGraph:
    """A directed quad mesh on a Klein bottle (``klein-bottle`` family).

    Like a torus, but the vertical wraparound reverses orientation
    (the Klein-bottle twist).  Average out-degree ~2.2 after deduping
    boundary duplicates, matching Table III.
    """
    n = width * height
    idx = np.arange(n, dtype=np.int64).reshape(height, width)
    right = np.stack([idx.ravel(), np.roll(idx, -1, axis=1).ravel()], axis=1)
    down_body = np.stack([idx[:-1].ravel(), idx[1:].ravel()], axis=1)
    # twist: last row wraps to the first row with columns mirrored
    twist = np.stack([idx[-1], idx[0][::-1]], axis=1)
    # every 4th vertex gets a skip edge, lifting d-avg towards ~2.25
    flat = idx.ravel()
    skip = np.stack([flat[::4], np.roll(idx, -2, axis=1).ravel()[::4]], axis=1)
    edges = np.concatenate([right, down_body, twist, skip])
    return _edges_to_graph(n, edges, name or f"klein-{width}x{height}",
                           directed=True, symmetrize=False)


def star_mesh(n: int, name: str = "") -> CSRGraph:
    """A degree-2 directed mesh (the ``star`` input: d-avg 2.0, d-max 2).

    Each vertex points to its ring successor and to a fixed chord,
    forming one large SCC of uniform out-degree 2.
    """
    v = np.arange(n, dtype=np.int64)
    succ = np.stack([v, (v + 1) % n], axis=1)
    chord = np.stack([v, (v + n // 2 + 1) % n], axis=1)
    return _edges_to_graph(n, np.concatenate([succ, chord]),
                           name or f"star-{n}", directed=True,
                           symmetrize=False)


def layered_flow(n: int, seed: int = 0, layers: int = 64,
                 name: str = "") -> CSRGraph:
    """CFD-mesh analog (``cold-flow``): layered 3-D flow volume.

    Vertices sit in layers; edges go forward within/between adjacent
    layers plus sparse recirculation edges backwards, producing several
    medium-size SCCs like a discretized flow field.
    """
    rng = _rng(seed)
    layer_size = max(1, n // layers)
    v = np.arange(n, dtype=np.int64)
    nxt = np.minimum(v + 1, n - 1)
    fwd1 = np.stack([v, nxt], axis=1)
    fwd2 = np.stack([v, np.minimum(v + layer_size, n - 1)], axis=1)
    back_n = n // 3
    bu = rng.integers(layer_size, n, size=back_n, dtype=np.int64)
    bv = bu - rng.integers(1, 2 * layer_size, size=back_n, dtype=np.int64)
    back = np.stack([bu, np.maximum(bv, 0)], axis=1)
    return _edges_to_graph(n, np.concatenate([fwd1, fwd2, back]),
                           name or f"flow-{n}", directed=True,
                           symmetrize=False)


def cage_graph(n: int, seed: int = 0, band: int = 40, avg_degree: int = 18,
               name: str = "") -> CSRGraph:
    """DNA-electrophoresis matrix analog (``cage14``: d-avg 18, d-max 41).

    Near-regular directed graph whose edges stay within a narrow id band
    (banded sparse matrix), with both forward and backward edges so the
    band forms a giant SCC.
    """
    rng = _rng(seed)
    m = n * avg_degree
    src = rng.integers(0, n, size=m, dtype=np.int64)
    offs = rng.integers(-band, band + 1, size=m, dtype=np.int64)
    dst = np.clip(src + offs, 0, n - 1)
    return _edges_to_graph(n, np.stack([src, dst], axis=1),
                           name or f"cage-{n}", directed=True,
                           symmetrize=False)


def circuit_graph(n: int, seed: int = 0, avg_degree: float = 10.7,
                  name: str = "") -> CSRGraph:
    """VLSI-circuit analog (``circuit5M``: power-law with an enormous hub).

    A handful of net vertices (power/clock rails) connect to a large
    fraction of the graph — reproducing circuit5M's d-max of ~23 % of n
    — on top of a sparse random local structure.
    """
    rng = _rng(seed)
    hub_fanout = int(n * 0.2)
    hubs = np.zeros(hub_fanout, dtype=np.int64)  # vertex 0 is the big rail
    hub_dst = rng.integers(0, n, size=hub_fanout, dtype=np.int64)
    hub_edges = np.stack([hubs, hub_dst], axis=1)
    back_edges = np.stack([hub_dst[::8], hubs[::8]], axis=1)
    m = int(n * avg_degree) - hub_fanout
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = np.clip(src + rng.integers(-100, 101, size=m), 0, n - 1)
    local = np.stack([src, dst], axis=1)
    return _edges_to_graph(n, np.concatenate([hub_edges, back_edges, local]),
                           name or f"circuit-{n}", directed=True,
                           symmetrize=False)


def directed_powerlaw(n: int, avg_degree: float, seed: int = 0,
                      reciprocity: float = 0.3, leaf_fraction: float = 0.2,
                      name: str = "") -> CSRGraph:
    """Generic directed power-law graph (``flickr``, ``wikipedia``,
    ``web-Google``): hub-directed edges with partial reciprocity, so one
    giant SCC coexists with many small/trivial components.

    A ``leaf_fraction`` of the highest-id vertices receives no in-edges
    — the crawl-frontier pages of real web graphs, whose SCCs are
    trivial singletons.
    """
    rng = _rng(seed)
    core = max(2, int(n * (1.0 - leaf_fraction)))
    m = int(n * avg_degree / (1.0 + reciprocity))
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = ((rng.random(m) ** 2.5) * core).astype(np.int64)
    recip_n = int(m * reciprocity)
    # reciprocate only core-to-core edges so leaves stay in-edge-free
    rs, rd = dst[:recip_n], src[:recip_n]
    keep = rd < core
    edges = np.concatenate([
        np.stack([src, dst], axis=1),
        np.stack([rs[keep], rd[keep]], axis=1),
    ])
    return _edges_to_graph(n, edges, name or f"dpl-{n}", directed=True,
                           symmetrize=False)
