"""Graph substrate: CSR storage, generators, I/O, and the paper's input suite.

All ECL codes operate on graphs in compressed-sparse-row (CSR) format
[48]; this package provides that representation plus synthetic
generators standing in for the paper's inputs (Tables II and III).
"""

from repro.graphs.csr import CSRGraph
from repro.graphs.properties import GraphProperties, compute_properties
from repro.graphs import generators
from repro.graphs.suite import (
    DIRECTED_SUITE,
    UNDIRECTED_SUITE,
    load_suite_graph,
    suite_names,
)

__all__ = [
    "CSRGraph",
    "GraphProperties",
    "compute_properties",
    "generators",
    "UNDIRECTED_SUITE",
    "DIRECTED_SUITE",
    "load_suite_graph",
    "suite_names",
]
