"""Graph serialization.

Two formats are supported:

* A binary format modelled on the ECL ``.egr`` layout the paper's suite
  uses (header + CSR arrays), extended with a flags word for direction
  and weights.
* A human-readable edge-list text format for small fixtures.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.csr import CSRGraph

_MAGIC = b"ECLR"
_VERSION = 1
_FLAG_DIRECTED = 1
_FLAG_WEIGHTED = 2


def write_binary(graph: CSRGraph, path: str | Path) -> None:
    """Write ``graph`` in the binary CSR format."""
    path = Path(path)
    flags = 0
    if graph.directed:
        flags |= _FLAG_DIRECTED
    if graph.has_weights:
        flags |= _FLAG_WEIGHTED
    with open(path, "wb") as f:
        f.write(_MAGIC)
        f.write(struct.pack("<IIQQ", _VERSION, flags,
                            graph.num_vertices, graph.num_edges))
        f.write(graph.row_offsets.astype("<i8").tobytes())
        f.write(graph.col_indices.astype("<i4").tobytes())
        if graph.weights is not None:
            f.write(graph.weights.astype("<i8").tobytes())


def read_binary(path: str | Path) -> CSRGraph:
    """Read a graph written by :func:`write_binary`."""
    path = Path(path)
    with open(path, "rb") as f:
        magic = f.read(4)
        if magic != _MAGIC:
            raise GraphFormatError(f"{path}: bad magic {magic!r}")
        header = f.read(struct.calcsize("<IIQQ"))
        version, flags, n, m = struct.unpack("<IIQQ", header)
        if version != _VERSION:
            raise GraphFormatError(f"{path}: unsupported version {version}")
        def read_array(count: int, itemsize: int, dtype: str,
                       label: str) -> np.ndarray:
            raw = f.read(count * itemsize)
            if len(raw) != count * itemsize:
                raise GraphFormatError(f"{path}: truncated {label}")
            return np.frombuffer(raw, dtype=dtype)

        offsets = read_array(n + 1, 8, "<i8", "offsets")
        indices = read_array(m, 4, "<i4", "indices")
        weights = None
        if flags & _FLAG_WEIGHTED:
            weights = read_array(m, 8, "<i8", "weights")
    return CSRGraph(offsets.copy(), indices.copy(),
                    directed=bool(flags & _FLAG_DIRECTED),
                    weights=None if weights is None else weights.copy(),
                    name=path.stem)


def write_edgelist(graph: CSRGraph, path: str | Path) -> None:
    """Write a text edge list: header line, then ``u v [w]`` per edge."""
    path = Path(path)
    with open(path, "w") as f:
        f.write(f"# vertices {graph.num_vertices} "
                f"directed {int(graph.directed)} "
                f"weighted {int(graph.has_weights)}\n")
        src, dst = graph.edge_array()
        if graph.has_weights:
            for u, v, w in zip(src.tolist(), dst.tolist(),
                               graph.weights.tolist()):
                f.write(f"{u} {v} {w}\n")
        else:
            for u, v in zip(src.tolist(), dst.tolist()):
                f.write(f"{u} {v}\n")


def read_edgelist(path: str | Path) -> CSRGraph:
    """Read a text edge list written by :func:`write_edgelist`."""
    path = Path(path)
    with open(path) as f:
        header = f.readline().split()
        if (len(header) != 7 or header[0] != "#" or header[1] != "vertices"
                or header[3] != "directed" or header[5] != "weighted"):
            raise GraphFormatError(f"{path}: bad header line")
        n = int(header[2])
        directed = bool(int(header[4]))
        weighted = bool(int(header[6]))
        edges: list[tuple[int, int]] = []
        weights: list[int] = []
        for lineno, line in enumerate(f, start=2):
            parts = line.split()
            if not parts:
                continue
            expected = 3 if weighted else 2
            if len(parts) != expected:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected {expected} fields, "
                    f"got {len(parts)}"
                )
            edges.append((int(parts[0]), int(parts[1])))
            if weighted:
                weights.append(int(parts[2]))
    return CSRGraph.from_edges(
        n, np.array(edges, dtype=np.int64).reshape(-1, 2),
        directed=directed,
        weights=np.array(weights, dtype=np.int64) if weighted else None,
        name=path.stem, dedupe=False,
    )
