"""Visibility / staleness modelling for asynchronous kernels.

The paper attributes the race-free MIS speedup to update visibility:
the baseline's plain accesses let the compiler keep polled values in
registers, "delaying when updates become visible to other threads",
whereas the inserted atomics force every poll to observe current memory
(Section VI.A).

:class:`DelayedView` reproduces that mechanism for the round-based
performance engine: readers of a shared array observe, per element, the
value from up to ``delay`` rounds ago.  Only a configurable *fraction*
of elements is delayed each round — the compiler register-allocates
*some* of the accesses, not all of them ("the compiler may 'optimize'
some of these accesses", Section VI.A) — selected deterministically so
runs are reproducible.
"""

from __future__ import annotations

from collections import deque

import numpy as np


class DelayedView:
    """A shared array with bounded-staleness reads.

    Parameters
    ----------
    values:
        The authoritative current array (mutated by the caller between
        ``commit()`` calls).
    delay:
        Maximum staleness in rounds.  0 = always current (the race-free
        behaviour).
    stale_fraction:
        Fraction of elements whose read is served from the stale
        snapshot each round.
    seed:
        Determinism for the per-round stale subsets.
    """

    def __init__(self, values: np.ndarray, delay: int,
                 stale_fraction: float = 1.0, seed: int = 0) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        if not 0.0 <= stale_fraction <= 1.0:
            raise ValueError(
                f"stale_fraction must be in [0, 1], got {stale_fraction}")
        self.values = values
        self.delay = delay
        self.stale_fraction = stale_fraction
        self._rng = np.random.default_rng(seed)
        self._history: deque[np.ndarray] = deque(maxlen=delay + 1)
        self._round = 0
        self.commit()

    def commit(self) -> None:
        """Snapshot the current values: call once per round."""
        self._history.append(self.values.copy())
        self._round += 1

    def read(self) -> np.ndarray:
        """The array as concurrent readers observe it this round."""
        if self.delay == 0 or len(self._history) == 1:
            return self.values
        stale = self._history[0]
        if self.stale_fraction >= 1.0:
            return stale
        mask = self._rng.random(self.values.shape[0]) < self.stale_fraction
        out = self.values.copy()
        out[mask] = stale[mask]
        return out
