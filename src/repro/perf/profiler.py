"""Per-site profiling — the reproduction of Section VI.A's methodology.

The paper explains its results by *profiling*: "Profiling the two code
versions revealed that the baseline code has a much higher L1 hit rate
for both loads and stores, which explains the performance difference."

:class:`SiteProfile` accumulates, per access site, how many loads,
stores, and RMWs a run issued and what they cost under the device's
timing model; :func:`profile_run` executes one (algorithm, variant)
configuration with site tracking enabled and returns the comparison
table a performance engineer would look at.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.transform import plan_for
from repro.core.variants import AlgorithmInfo, Variant
from repro.gpu.accesses import AccessKind
from repro.gpu.device import DeviceSpec, device_key
from repro.gpu.timing import AccessStats, TimingModel
from repro.perf.engine import Recorder, algorithm_plan
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import get_spans
from repro.utils.tables import format_table


def _whole(n: float) -> int:
    """An access count as an int; site counts are numbers of accesses,
    so a fractional value is an instrumentation bug, not data."""
    i = int(n)
    if i != n:
        raise ValueError(f"non-integral access count {n!r}")
    return i


@dataclass
class SiteTraffic:
    """Traffic through one access site (whole accesses, so ints)."""

    site: str
    kind: AccessKind
    loads: int = 0
    stores: int = 0
    rmws: int = 0

    @property
    def total(self) -> int:
        return self.loads + self.stores + self.rmws


class ProfilingRecorder(Recorder):
    """A :class:`Recorder` that additionally tallies traffic per site."""

    def __init__(self, plan, variant, device) -> None:
        super().__init__(plan, variant, device)
        self.sites: dict[str, SiteTraffic] = {}

    def _traffic(self, name: str) -> SiteTraffic:
        if name not in self.sites:
            self.sites[name] = SiteTraffic(name, self._site(name).kind)
        return self.sites[name]

    def load(self, site, indices=None, count=None) -> None:
        super().load(site, indices, count)
        self._traffic(site).loads += _whole(self._count(indices, count))

    def store(self, site, indices=None, count=None) -> None:
        super().store(site, indices, count)
        self._traffic(site).stores += _whole(self._count(indices, count))

    def rmw(self, site, indices=None, count=None) -> None:
        super().rmw(site, indices, count)
        self._traffic(site).rmws += _whole(self._count(indices, count))


@dataclass
class RunProfile:
    """Everything the profiler learned about one run."""

    algorithm: str
    variant: Variant
    device: DeviceSpec
    sites: dict[str, SiteTraffic]
    stats: AccessStats
    runtime_ms: float

    @property
    def l1_traffic_share(self) -> float:
        """Fraction of shared-data accesses served by the L1 path
        (plain accesses) — the paper's L1-hit-rate proxy."""
        total = self.stats.total_accesses
        if total == 0:
            return 0.0
        plain = self.stats.plain_loads + self.stats.plain_stores
        return plain / total


def profile_run(algorithm: AlgorithmInfo, graph, device: DeviceSpec,
                variant: Variant, seed: int = 0) -> RunProfile:
    """Run one configuration with per-site tracking.

    When telemetry is enabled the profile is additionally published as
    ``repro_site_accesses_total{algorithm, variant, site, kind, op}``
    (plus L1 hit-rate gauges); return value and tables are unchanged.
    """
    with get_spans().span("perf.profile", algorithm=algorithm.key,
                          variant=variant.value):
        recorder = ProfilingRecorder(algorithm_plan(algorithm), variant,
                                     device)
        algorithm.perf_runner(graph, recorder, seed)
        runtime = TimingModel(device).estimate_ms(recorder.stats)
    profile = RunProfile(algorithm.key, variant, device, recorder.sites,
                         recorder.stats, runtime)
    _publish_profile(profile)
    return profile


def _publish_profile(profile: RunProfile) -> None:
    reg = get_registry()
    if not reg.enabled:
        return
    labels = ("algorithm", "variant", "site", "kind", "op")
    fam = reg.counter("repro_site_accesses_total",
                      "Per-site shared-memory accesses (profiler)", labels)
    for name in sorted(profile.sites):
        t = profile.sites[name]
        base = (profile.algorithm, profile.variant.value, name,
                t.kind.value)
        for op, n in (("load", t.loads), ("store", t.stores),
                      ("rmw", t.rmws)):
            if n:
                fam.inc(n, *base, op)
    cell = ("algorithm", "variant", "device")
    vals = (profile.algorithm, profile.variant.value,
            device_key(profile.device))
    reg.gauge("repro_profile_l1_traffic_share",
              "Fraction of shared-data accesses on the L1 (plain) path",
              cell).set(profile.l1_traffic_share, *vals)
    reg.gauge("repro_profile_runtime_ms",
              "Modelled runtime of the profiled run (ms)", cell
              ).set(profile.runtime_ms, *vals)


def compare_profiles(base: RunProfile, free: RunProfile) -> str:
    """The side-by-side table of Section VI.A's profiling argument."""
    names = sorted(set(base.sites) | set(free.sites))
    rows = []
    for name in names:
        b = base.sites.get(name)
        f = free.sites.get(name)
        rows.append([
            name,
            b.kind.value if b else "-",
            b.total if b else 0.0,
            f.kind.value if f else "-",
            f.total if f else 0.0,
        ])
    rows.append(["(runtime ms)", "", base.runtime_ms, "", free.runtime_ms])
    rows.append(["(L1-path share)", "", base.l1_traffic_share, "",
                 free.l1_traffic_share])
    return format_table(
        ["Site", "Base kind", "Base accesses", "Free kind",
         "Free accesses"],
        rows, float_format="{:.4g}",
    )


def dominant_racy_site(profile: RunProfile) -> str | None:
    """The busiest originally-racy site of a run — where the race-free
    conversion's cost concentrates (e.g. CC's jump reads)."""
    plan = plan_for(algorithm_plan_by_key(profile.algorithm),
                    Variant.BASELINE)
    racy_names = {s.name for s in plan.racy_sites()}
    candidates = [t for n, t in profile.sites.items() if n in racy_names]
    if not candidates:
        return None
    return max(candidates, key=lambda t: t.total).site


def algorithm_plan_by_key(key: str):
    from repro.core.variants import get_algorithm

    return algorithm_plan(get_algorithm(key))
