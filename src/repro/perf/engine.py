"""The performance engine: recorded vectorized execution.

Algorithms at the performance level are ordinary numpy code, but every
access to *shared* data goes through a :class:`Recorder`, which

* looks up the access kind of the named site under the active variant
  (consulting the algorithm's :class:`~repro.core.transform.AccessPlan`
  and the race-removal transform),
* counts the access into the matching bucket of
  :class:`~repro.gpu.timing.AccessStats`, and
* for atomic streams, measures same-address contention (collisions
  within the round's access vector — CC/MST's hot set representatives).

``run_algorithm`` is the single entry point the study framework uses.
It is internally split into **record** (:func:`record_trace` — run the
vectorized algorithm once per staleness class) and **replay**
(:func:`replay_trace` — price a cached trace for a device), with an
optional :class:`~repro.perf.trace.TraceCache` so a multi-device sweep
executes each configuration's functional work once instead of once per
device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.transform import AccessPlan, plan_for, site_kind
from repro.core.variants import Variant
from repro.errors import StudyError
from repro.gpu import tiers
from repro.gpu.accesses import AccessKind, MemoryOrder
from repro.gpu.device import DeviceSpec, device_key
from repro.gpu.timing import AccessStats, TimingModel
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry
from repro.telemetry.spans import get_spans
from repro.perf.trace import (
    ANY_STALENESS,
    Trace,
    output_fingerprint,
    plan_fingerprint,
    stable_config_hash,
    trace_key,
)


@dataclass
class PerfRun:
    """Outcome of one performance-level run."""

    algorithm: str
    variant: Variant
    device: DeviceSpec
    output: dict[str, Any]
    stats: AccessStats
    runtime_ms: float
    rounds: int


class Recorder:
    """Counts the shared-memory traffic of one run.

    The recorder sees the device only through ``staleness_rounds`` (the
    register-caching visibility constant) — this is what makes recorded
    traces device-independent within a staleness class, so the trace
    cache can replay one execution on every device that shares the
    constant.  Pass either a full :class:`DeviceSpec` (the constant is
    taken from it) or ``staleness_rounds`` directly (the record path).
    """

    def __init__(self, plan: AccessPlan, variant: Variant,
                 device: DeviceSpec | None = None, *,
                 staleness_rounds: int | None = None) -> None:
        self.plan = plan
        self.variant = variant
        self.device = device
        if staleness_rounds is None:
            if device is None:
                raise StudyError("pass either device or staleness_rounds")
            staleness_rounds = device.plain_staleness_rounds
        self.staleness_rounds = int(staleness_rounds)
        #: set when an execution actually consumes the constant; traces
        #: that never do are valid for every staleness class
        self.staleness_consulted = False
        self.stats = AccessStats()
        self._footprints: dict[str, float] = {}

    # ------------------------------------------------------------------
    def _count(self, indices: np.ndarray | None, count: float | None) -> float:
        if count is not None:
            return float(count)
        if indices is None:
            raise StudyError("pass either indices or count")
        return float(np.asarray(indices).shape[0])

    def _contention(self, indices: np.ndarray | None) -> float:
        if indices is None:
            return 0.0
        idx = np.asarray(indices)
        if idx.size == 0:
            return 0.0
        return float(idx.shape[0] - np.unique(idx).shape[0])

    def _bucket(self, kind: AccessKind, n: float, store: bool) -> None:
        s = self.stats
        if kind is AccessKind.PLAIN:
            if store:
                s.plain_stores += n
            else:
                s.plain_loads += n
        elif kind is AccessKind.VOLATILE:
            if store:
                s.volatile_stores += n
            else:
                s.volatile_loads += n
        else:
            if store:
                s.atomic_stores += n
            else:
                s.atomic_loads += n

    # ------------------------------------------------------------------
    def _site(self, name: str):
        return plan_for(self.plan, self.variant).site(name)

    #: relative fence strength per memory order (relaxed is free;
    #: seq_cst forbids all reordering and costs double the one-sided
    #: acquire/release orders)
    ORDER_WEIGHT = {
        MemoryOrder.RELAXED: 0.0,
        MemoryOrder.ACQUIRE: 1.0,
        MemoryOrder.RELEASE: 1.0,
        MemoryOrder.ACQ_REL: 1.0,
        MemoryOrder.SEQ_CST: 2.0,
    }

    def _order_extra(self, site, n: float) -> None:
        if site.kind is AccessKind.ATOMIC:
            self.stats.ordered_atomics += n * self.ORDER_WEIGHT[site.order]

    def load(self, site: str, indices: np.ndarray | None = None,
             count: float | None = None) -> None:
        """Record loads at ``site`` (one per index, or ``count``)."""
        s = self._site(site)
        n = self._count(indices, count)
        self._bucket(s.kind, n, store=False)
        self._order_extra(s, n)
        # same-address atomic *loads* do not serialize on the modelled
        # hardware (L2 read combining); only stores and RMWs contend

    def store(self, site: str, indices: np.ndarray | None = None,
              count: float | None = None) -> None:
        """Record stores at ``site``."""
        s = self._site(site)
        n = self._count(indices, count)
        self._bucket(s.kind, n, store=True)
        self._order_extra(s, n)
        if s.kind is AccessKind.ATOMIC:
            self.stats.contended_atomics += self._contention(indices)

    def rmw(self, site: str, indices: np.ndarray | None = None,
            count: float | None = None) -> None:
        """Record read-modify-write atomics (atomic in *both* variants)."""
        s = self._site(site)
        n = self._count(indices, count)
        self.stats.atomic_rmws += n
        self._order_extra(s, n)
        self.stats.contended_atomics += self._contention(indices)

    def structure(self, count: float) -> None:
        """Read-only CSR structure loads: plain in both variants (no
        thread ever writes the graph, so these cannot race)."""
        self.stats.plain_loads += float(count)

    def compute(self, ops: float) -> None:
        """Non-memory work (index arithmetic, comparisons)."""
        self.stats.compute_ops += float(ops)

    def round(self, launches: int = 1) -> None:
        """One host-side iteration: ``launches`` kernel launches."""
        self.stats.rounds += launches

    def touch(self, name: str, nbytes: float) -> None:
        """Declare data footprint (unique bytes) of array ``name``."""
        self._footprints[name] = max(self._footprints.get(name, 0.0),
                                     float(nbytes))
        self.stats.footprint_bytes = sum(self._footprints.values())

    # ------------------------------------------------------------------
    def staleness(self, site: str) -> int:
        """Visibility delay (rounds) readers of ``site`` experience.

        Non-zero only for PLAIN sites — the register-caching compiler
        model — and scaled by the device's staleness constant.
        """
        kind = site_kind(self.plan, self.variant, site)
        if kind is AccessKind.PLAIN:
            return self.visibility_delay()
        return 0

    def visibility_delay(self) -> int:
        """Consume the staleness constant (marks the recording as
        staleness-class-dependent; see :data:`~repro.perf.trace
        .ANY_STALENESS`)."""
        self.staleness_consulted = True
        return self.staleness_rounds


#: scratch-vector bucket layout of :class:`BatchedRecorder`
_BUCKETS = (
    "plain_loads", "plain_stores", "volatile_loads", "volatile_stores",
    "atomic_loads", "atomic_stores", "atomic_rmws", "ordered_atomics",
    "contended_atomics", "compute_ops",
)
_LOAD_IDX = {AccessKind.PLAIN: 0, AccessKind.VOLATILE: 2,
             AccessKind.ATOMIC: 4}
_STORE_IDX = {AccessKind.PLAIN: 1, AccessKind.VOLATILE: 3,
              AccessKind.ATOMIC: 5}
_RMW_IDX, _ORDERED_IDX, _CONTENDED_IDX, _COMPUTE_IDX = 6, 7, 8, 9


class BatchedRecorder(Recorder):
    """Vectorized :class:`Recorder`: ndarray scratch, flushed per round.

    Per-site bucket increments land in a 10-slot float64 scratch vector
    and are folded into :class:`~repro.gpu.timing.AccessStats` once per
    :meth:`round` (and on final :attr:`stats` access) instead of once
    per call.  Site kinds and order weights are resolved once per site
    and cached.  Every increment the engine produces is integer-valued,
    so the regrouped float additions are exact and the resulting stats
    are byte-identical to the per-call recorder's.

    The contention measure replaces the base recorder's per-call
    ``np.unique`` (a sort, O(n log n)) with ``np.bincount`` collision
    counting (O(n + range)) whenever the index range is comparable to
    the stream length, falling back to ``np.unique`` for sparse ranges.
    """

    def __init__(self, plan: AccessPlan, variant: Variant,
                 device: DeviceSpec | None = None, *,
                 staleness_rounds: int | None = None) -> None:
        super().__init__(plan, variant, device,
                         staleness_rounds=staleness_rounds)
        self._scratch = np.zeros(len(_BUCKETS))
        self._resolved: dict[str, tuple[AccessKind, float]] = {}
        self._effective_plan = plan_for(self.plan, self.variant)
        self.flushes = 0

    # base __init__ assigns ``self.stats``; route it through a property
    # so every external read sees a flushed view
    @property
    def stats(self) -> AccessStats:
        self._flush()
        return self._stats

    @stats.setter
    def stats(self, value: AccessStats) -> None:
        self._stats = value

    def _flush(self) -> None:
        sc = getattr(self, "_scratch", None)
        if sc is None or not sc.any():
            return
        # plain floats, not np.float64: stats values flow into metric
        # gauges and JSON exports that expect native scalars
        s = self._stats
        s.plain_loads += float(sc[0])
        s.plain_stores += float(sc[1])
        s.volatile_loads += float(sc[2])
        s.volatile_stores += float(sc[3])
        s.atomic_loads += float(sc[4])
        s.atomic_stores += float(sc[5])
        s.atomic_rmws += float(sc[6])
        s.ordered_atomics += float(sc[7])
        s.contended_atomics += float(sc[8])
        s.compute_ops += float(sc[9])
        sc[:] = 0.0
        self.flushes += 1
        reg = get_registry()
        if reg.enabled:
            reg.counter("repro_simt_batch_recorder_flushes_total",
                        "Scratch-to-stats flushes of the batched recorder",
                        ("algorithm",)).inc(1, self.plan.algorithm)

    def _resolve(self, name: str) -> tuple[AccessKind, float]:
        entry = self._resolved.get(name)
        if entry is None:
            site = self._effective_plan.site(name)
            weight = (self.ORDER_WEIGHT[site.order]
                      if site.kind is AccessKind.ATOMIC else 0.0)
            entry = (site.kind, weight)
            self._resolved[name] = entry
        return entry

    def _contention(self, indices: np.ndarray | None) -> float:
        if indices is None:
            return 0.0
        idx = np.asarray(indices)
        if idx.size == 0:
            return 0.0
        lo = int(idx.min())
        span = int(idx.max()) - lo + 1
        if span <= 4 * idx.size + 1024:
            occupied = np.count_nonzero(
                np.bincount(idx.astype(np.int64) - lo, minlength=span))
            return float(idx.shape[0] - occupied)
        return float(idx.shape[0] - np.unique(idx).shape[0])

    # ------------------------------------------------------------------
    def load(self, site: str, indices: np.ndarray | None = None,
             count: float | None = None) -> None:
        kind, weight = self._resolve(site)
        n = self._count(indices, count)
        sc = self._scratch
        sc[_LOAD_IDX[kind]] += n
        if weight:
            sc[_ORDERED_IDX] += n * weight

    def store(self, site: str, indices: np.ndarray | None = None,
              count: float | None = None) -> None:
        kind, weight = self._resolve(site)
        n = self._count(indices, count)
        sc = self._scratch
        sc[_STORE_IDX[kind]] += n
        if weight:
            sc[_ORDERED_IDX] += n * weight
        if kind is AccessKind.ATOMIC:
            sc[_CONTENDED_IDX] += self._contention(indices)

    def rmw(self, site: str, indices: np.ndarray | None = None,
            count: float | None = None) -> None:
        kind, weight = self._resolve(site)
        n = self._count(indices, count)
        sc = self._scratch
        sc[_RMW_IDX] += n
        if kind is AccessKind.ATOMIC and weight:
            sc[_ORDERED_IDX] += n * weight
        sc[_CONTENDED_IDX] += self._contention(indices)

    def structure(self, count: float) -> None:
        self._scratch[0] += float(count)

    def compute(self, ops: float) -> None:
        self._scratch[_COMPUTE_IDX] += float(ops)

    def round(self, launches: int = 1) -> None:
        self._flush()
        self._stats.rounds += launches

    def touch(self, name: str, nbytes: float) -> None:
        self._footprints[name] = max(self._footprints.get(name, 0.0),
                                     float(nbytes))
        self._stats.footprint_bytes = sum(self._footprints.values())


def make_recorder(plan: AccessPlan, variant: Variant,
                  device: DeviceSpec | None = None, *,
                  staleness_rounds: int | None = None,
                  engine: str | None = None) -> Recorder:
    """Build the recorder for the selected execution tier.

    ``engine`` overrides the process-wide mode from
    :mod:`repro.gpu.tiers` (``interp``/``batched``/``auto``); both
    recorders produce byte-identical :class:`AccessStats`.
    """
    cls = BatchedRecorder if tiers.recorder_batch_enabled(engine) else Recorder
    return cls(plan, variant, device, staleness_rounds=staleness_rounds)


#: relative sigma of the run-to-run noise model (the paper reports a
#: median relative deviation of 0.6 % across its nine hardware runs)
RUNTIME_NOISE_SIGMA = 0.004


def noise_multiplier(algorithm_key: str, variant: Variant,
                     seed: int) -> float:
    """The seeded run-to-run noise factor of one repetition.

    Stands in for hardware variance (clock jitter, scheduling) so the
    paper's median-of-nine protocol remains meaningful on
    configurations whose computation is otherwise seed-invariant.
    Seeded by (seed, algorithm, variant) only — never by the device —
    which is what lets a replayed trace reproduce the direct engine's
    runtime bit-for-bit.  Uses a stable digest, not Python's
    per-process randomized string hash, so the factor is identical
    across interpreter invocations and pool workers.
    """
    rng = np.random.default_rng(
        (seed * 2654435761
         + stable_config_hash(algorithm_key, variant)) & 0xFFFFFFFF
    )
    return 1.0 + float(np.clip(rng.normal(0.0, RUNTIME_NOISE_SIGMA),
                               -0.015, 0.015))


def record_trace(algorithm, graph, variant: Variant, seed: int,
                 staleness_rounds: int, plan: AccessPlan | None = None,
                 engine: str | None = None) -> Trace:
    """Run the functional execution once and capture its trace.

    This is the expensive half of the record/replay split: it executes
    ``perf_runner`` (the full vectorized algorithm) under a
    :class:`Recorder` parameterized only by the staleness class, and
    returns the :class:`~repro.perf.trace.Trace` that
    :func:`replay_trace` can price for *any* device sharing that
    staleness constant.

    ``engine`` picks the recorder tier (see :func:`make_recorder`);
    the recorded stats are byte-identical either way.
    """
    if plan is None:
        plan = algorithm_plan(algorithm)
    recorder = make_recorder(plan, variant,
                             staleness_rounds=staleness_rounds,
                             engine=engine)
    with get_spans().span("perf.record", algorithm=algorithm.key,
                          variant=variant.value, seed=seed):
        output = algorithm.perf_runner(graph, recorder, seed)
    return Trace(
        algorithm=algorithm.key,
        variant=variant,
        seed=seed,
        # a recording that never consumed the constant is valid for
        # every staleness class: key it with the wildcard
        staleness_rounds=(int(staleness_rounds)
                          if recorder.staleness_consulted
                          else ANY_STALENESS),
        graph_fp=graph.fingerprint(),
        plan_fp=plan_fingerprint(plan),
        stats=recorder.stats,
        output_fp=output_fingerprint(output),
        output=output,
    )


def replay_trace(trace: Trace, device: DeviceSpec) -> float:
    """Price a recorded trace for one device (microseconds of work).

    Bit-identical to what the direct engine computes for the same
    (algorithm, graph, variant, seed) on ``device``: the same
    :class:`~repro.gpu.timing.TimingModel` call on the same stats,
    scaled by the same seeded noise factor.
    """
    noise = noise_multiplier(trace.algorithm, trace.variant, trace.seed)
    return TimingModel(device).estimate_ms(trace.stats) * noise


def run_algorithm(algorithm, graph, device: DeviceSpec, variant: Variant,
                  seed: int = 0, faults=None, trace_cache=None,
                  need_output: bool = True, memory_model=None) -> PerfRun:
    """Run one (algorithm, input, device, variant) configuration.

    ``algorithm`` is an :class:`~repro.core.variants.AlgorithmInfo`;
    its ``perf_runner(graph, recorder, seed)`` does the work and returns
    the output arrays.  The runtime is then priced by the timing model,
    plus a small seeded noise term standing in for hardware run-to-run
    variance.

    ``trace_cache`` is an optional
    :class:`~repro.perf.trace.TraceCache`: when the cache holds a trace
    for this (algorithm, graph, variant, seed, staleness-class), the
    functional execution is skipped entirely and the cached stats are
    re-priced for ``device`` — bit-identical to the direct path,
    microseconds instead of a full numpy execution.  ``need_output``
    forces a fresh recording when the cached trace carries no output
    arrays (disk-loaded traces never do); callers that validate
    outputs must set it.  Replayed runs may therefore have
    ``output=None`` when ``need_output`` is false.

    ``faults`` is an optional
    :class:`~repro.gpu.faults.FaultInjector`: it may abort the run with
    a :class:`~repro.errors.TransientKernelFault` before any work, and
    afterwards may stretch the runtime (scheduler stall), raise
    :class:`~repro.errors.DeadlockError` (stuck-stale polling loop), or
    silently corrupt the output arrays (torn/dropped non-atomic
    stores) — each gated on the *variant's* exposure, so race-free
    plans are immune to the data-corrupting kinds.  ``faults=None``
    leaves the run bit-identical to the unfaulted engine.  A faulted
    run never touches the trace cache: injection mutates outputs and
    runtimes in ways a shared recording must not absorb.

    ``memory_model`` (a :class:`~repro.memmodel.models.MemoryModel` or
    spec string) prices the run under that model's semantics: every
    shared atomic site's order is lifted to the model's floor before
    recording, so e.g. ``ptx:acq_rel`` answers "what would this
    variant cost with acquire/release atomics?".  The transformed plan
    has its own fingerprint, so model-priced traces never collide with
    default ones in a shared cache.  None keeps the paper's relaxed
    default (an identity transform).
    """
    plan = algorithm_plan(algorithm)
    if memory_model is not None:
        from repro.memmodel.models import resolve_model

        plan = resolve_model(memory_model).apply_to_plan(plan)
    staleness = device.plain_staleness_rounds

    if faults is not None:
        faults.begin_perf_run(algorithm.key, variant, plan)
        # faulted runs stay on the per-call interpreter recorder: fault
        # plans are exercised and validated against its exact behavior
        trace = record_trace(algorithm, graph, variant, seed, staleness,
                             plan=plan, engine=tiers.ENGINE_INTERP)
        runtime = replay_trace(trace, device)
        runtime = faults.perf_finish(trace.output, runtime)
        return _perf_run(algorithm, variant, device, trace, runtime,
                         input_name=graph.name, source="fault")

    trace = None
    source = "record"
    if trace_cache is not None:
        graph_fp = graph.fingerprint()
        plan_fp = plan_fingerprint(plan)
        key = trace_key(algorithm.key, graph_fp, variant, seed,
                        staleness, plan_fp)
        trace = trace_cache.lookup(key, need_output=need_output)
        if trace is None:
            # staleness-independent recordings live under the wildcard
            trace = trace_cache.lookup(
                trace_key(algorithm.key, graph_fp, variant, seed,
                          ANY_STALENESS, plan_fp),
                need_output=need_output)
        if trace is not None:
            source = "replay"
    if trace is None:
        trace = record_trace(algorithm, graph, variant, seed, staleness,
                             plan=plan)
        if trace_cache is not None:
            trace_cache.store(trace)
    return _perf_run(algorithm, variant, device, trace,
                     replay_trace(trace, device),
                     input_name=graph.name, source=source)


#: cell-granularity labels of every sim-scope run metric — one pool
#: task owns each labelset, which is what keeps float accumulation
#: order (and therefore merged parallel registries) identical to serial
CELL_LABELS = ("algorithm", "input", "device", "variant")


def _publish_run(run: PerfRun, input_name: str, source: str) -> None:
    """Emit the per-run metric family set for one priced run."""
    reg = get_registry()
    if not reg.enabled:
        return
    labels = (run.algorithm, input_name, device_key(run.device),
              run.variant.value)
    reg.counter("repro_perf_runs_total",
                "Performance-level runs priced", CELL_LABELS
                ).inc(1, *labels)
    reg.counter("repro_perf_rounds_total",
                "Host-side kernel rounds executed", CELL_LABELS
                ).inc(run.rounds, *labels)
    reg.histogram("repro_runtime_ms",
                  "Priced runtime of one repetition (ms)", CELL_LABELS
                  ).observe(run.runtime_ms, *labels)
    s = run.stats
    acc = reg.counter("repro_accesses_total",
                      "Shared-memory accesses by class and operation",
                      CELL_LABELS + ("kind", "op"))
    for kind, op, n in (
        ("plain", "load", s.plain_loads),
        ("plain", "store", s.plain_stores),
        ("volatile", "load", s.volatile_loads),
        ("volatile", "store", s.volatile_stores),
        ("atomic", "load", s.atomic_loads),
        ("atomic", "store", s.atomic_stores),
        ("atomic", "rmw", s.atomic_rmws),
    ):
        if n:
            acc.inc(n, *labels, kind, op)
    if s.contended_atomics:
        reg.counter("repro_contended_atomics_total",
                    "Same-address atomic store/RMW collisions", CELL_LABELS
                    ).inc(s.contended_atomics, *labels)
    # the Section VI.A mechanism: atomics and volatiles bypass L1 and
    # are served at L2, so racy->atomic conversion drains the L1
    bypass = (s.atomic_loads + s.atomic_stores + s.atomic_rmws
              + s.volatile_loads + s.volatile_stores)
    if bypass:
        reg.counter("repro_atomic_l1_bypass_total",
                    "Accesses bypassing L1 (atomics + volatiles served "
                    "at L2)", CELL_LABELS).inc(bypass, *labels)
    bd = TimingModel(run.device).estimate(s)
    reg.gauge("repro_l1_hit_rate",
              "L1 hit rate of plain accesses (analytic cache model)",
              CELL_LABELS).set(bd.l1_hit_rate, *labels)
    reg.gauge("repro_l2_hit_rate",
              "L2 hit rate of plain-access L1 misses", CELL_LABELS
              ).set(bd.l2_hit_rate, *labels)
    reg.gauge("repro_atomic_l2_hit_rate",
              "L2 hit rate of L1-bypassing (atomic/volatile) accesses",
              CELL_LABELS).set(bd.atomic_l2_hit_rate, *labels)
    # record vs replay is an operational property of this process's
    # trace cache (shared on disk), not of the simulated execution
    reg.counter("repro_perf_trace_source_total",
                "How each run's trace was obtained", ("source",),
                scope=SCOPE_PROCESS).inc(1, source)


def _perf_run(algorithm, variant: Variant, device: DeviceSpec,
              trace: Trace, runtime: float, *,
              input_name: str = "", source: str = "record") -> PerfRun:
    run = PerfRun(
        algorithm=algorithm.key,
        variant=variant,
        device=device,
        output=trace.output,
        stats=trace.stats,
        runtime_ms=runtime,
        rounds=trace.rounds,
    )
    _publish_run(run, input_name, source)
    return run


def algorithm_plan(algorithm) -> AccessPlan:
    """Fetch the ACCESS_PLAN declared by the algorithm's module."""
    import importlib

    module = importlib.import_module(algorithm.module)
    try:
        return module.ACCESS_PLAN
    except AttributeError:
        raise StudyError(
            f"module {algorithm.module} does not declare ACCESS_PLAN"
        ) from None
