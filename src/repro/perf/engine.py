"""The performance engine: recorded vectorized execution.

Algorithms at the performance level are ordinary numpy code, but every
access to *shared* data goes through a :class:`Recorder`, which

* looks up the access kind of the named site under the active variant
  (consulting the algorithm's :class:`~repro.core.transform.AccessPlan`
  and the race-removal transform),
* counts the access into the matching bucket of
  :class:`~repro.gpu.timing.AccessStats`, and
* for atomic streams, measures same-address contention (collisions
  within the round's access vector — CC/MST's hot set representatives).

``run_algorithm`` is the single entry point the study framework uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.transform import AccessPlan, plan_for, site_kind
from repro.core.variants import Variant
from repro.errors import StudyError
from repro.gpu.accesses import AccessKind, MemoryOrder
from repro.gpu.device import DeviceSpec
from repro.gpu.timing import AccessStats, TimingModel


@dataclass
class PerfRun:
    """Outcome of one performance-level run."""

    algorithm: str
    variant: Variant
    device: DeviceSpec
    output: dict[str, Any]
    stats: AccessStats
    runtime_ms: float
    rounds: int


class Recorder:
    """Counts the shared-memory traffic of one run."""

    def __init__(self, plan: AccessPlan, variant: Variant,
                 device: DeviceSpec) -> None:
        self.plan = plan
        self.variant = variant
        self.device = device
        self.stats = AccessStats()
        self._footprints: dict[str, float] = {}

    # ------------------------------------------------------------------
    def _count(self, indices: np.ndarray | None, count: float | None) -> float:
        if count is not None:
            return float(count)
        if indices is None:
            raise StudyError("pass either indices or count")
        return float(np.asarray(indices).shape[0])

    def _contention(self, indices: np.ndarray | None) -> float:
        if indices is None:
            return 0.0
        idx = np.asarray(indices)
        if idx.size == 0:
            return 0.0
        return float(idx.shape[0] - np.unique(idx).shape[0])

    def _bucket(self, kind: AccessKind, n: float, store: bool) -> None:
        s = self.stats
        if kind is AccessKind.PLAIN:
            if store:
                s.plain_stores += n
            else:
                s.plain_loads += n
        elif kind is AccessKind.VOLATILE:
            if store:
                s.volatile_stores += n
            else:
                s.volatile_loads += n
        else:
            if store:
                s.atomic_stores += n
            else:
                s.atomic_loads += n

    # ------------------------------------------------------------------
    def _site(self, name: str):
        return plan_for(self.plan, self.variant).site(name)

    #: relative fence strength per memory order (relaxed is free;
    #: seq_cst forbids all reordering and costs double the one-sided
    #: acquire/release orders)
    ORDER_WEIGHT = {
        MemoryOrder.RELAXED: 0.0,
        MemoryOrder.ACQUIRE: 1.0,
        MemoryOrder.RELEASE: 1.0,
        MemoryOrder.ACQ_REL: 1.0,
        MemoryOrder.SEQ_CST: 2.0,
    }

    def _order_extra(self, site, n: float) -> None:
        if site.kind is AccessKind.ATOMIC:
            self.stats.ordered_atomics += n * self.ORDER_WEIGHT[site.order]

    def load(self, site: str, indices: np.ndarray | None = None,
             count: float | None = None) -> None:
        """Record loads at ``site`` (one per index, or ``count``)."""
        s = self._site(site)
        n = self._count(indices, count)
        self._bucket(s.kind, n, store=False)
        self._order_extra(s, n)
        # same-address atomic *loads* do not serialize on the modelled
        # hardware (L2 read combining); only stores and RMWs contend

    def store(self, site: str, indices: np.ndarray | None = None,
              count: float | None = None) -> None:
        """Record stores at ``site``."""
        s = self._site(site)
        n = self._count(indices, count)
        self._bucket(s.kind, n, store=True)
        self._order_extra(s, n)
        if s.kind is AccessKind.ATOMIC:
            self.stats.contended_atomics += self._contention(indices)

    def rmw(self, site: str, indices: np.ndarray | None = None,
            count: float | None = None) -> None:
        """Record read-modify-write atomics (atomic in *both* variants)."""
        s = self._site(site)
        n = self._count(indices, count)
        self.stats.atomic_rmws += n
        self._order_extra(s, n)
        self.stats.contended_atomics += self._contention(indices)

    def structure(self, count: float) -> None:
        """Read-only CSR structure loads: plain in both variants (no
        thread ever writes the graph, so these cannot race)."""
        self.stats.plain_loads += float(count)

    def compute(self, ops: float) -> None:
        """Non-memory work (index arithmetic, comparisons)."""
        self.stats.compute_ops += float(ops)

    def round(self, launches: int = 1) -> None:
        """One host-side iteration: ``launches`` kernel launches."""
        self.stats.rounds += launches

    def touch(self, name: str, nbytes: float) -> None:
        """Declare data footprint (unique bytes) of array ``name``."""
        self._footprints[name] = max(self._footprints.get(name, 0.0),
                                     float(nbytes))
        self.stats.footprint_bytes = sum(self._footprints.values())

    # ------------------------------------------------------------------
    def staleness(self, site: str) -> int:
        """Visibility delay (rounds) readers of ``site`` experience.

        Non-zero only for PLAIN sites — the register-caching compiler
        model — and scaled by the device's staleness constant.
        """
        kind = site_kind(self.plan, self.variant, site)
        if kind is AccessKind.PLAIN:
            return self.device.plain_staleness_rounds
        return 0


#: relative sigma of the run-to-run noise model (the paper reports a
#: median relative deviation of 0.6 % across its nine hardware runs)
RUNTIME_NOISE_SIGMA = 0.004


def run_algorithm(algorithm, graph, device: DeviceSpec, variant: Variant,
                  seed: int = 0, faults=None) -> PerfRun:
    """Run one (algorithm, input, device, variant) configuration.

    ``algorithm`` is an :class:`~repro.core.variants.AlgorithmInfo`;
    its ``perf_runner(graph, recorder, seed)`` does the work and returns
    the output arrays.  The runtime is then priced by the timing model,
    plus a small seeded noise term standing in for hardware run-to-run
    variance (clock jitter, scheduling), so the paper's median-of-nine
    protocol remains meaningful on configurations whose computation is
    otherwise seed-invariant.

    ``faults`` is an optional
    :class:`~repro.gpu.faults.FaultInjector`: it may abort the run with
    a :class:`~repro.errors.TransientKernelFault` before any work, and
    afterwards may stretch the runtime (scheduler stall), raise
    :class:`~repro.errors.DeadlockError` (stuck-stale polling loop), or
    silently corrupt the output arrays (torn/dropped non-atomic
    stores) — each gated on the *variant's* exposure, so race-free
    plans are immune to the data-corrupting kinds.  ``faults=None``
    leaves the run bit-identical to the unfaulted engine.
    """
    plan = algorithm_plan(algorithm)
    recorder = Recorder(plan, variant, device)
    if faults is not None:
        faults.begin_perf_run(algorithm.key, variant, plan)
    output = algorithm.perf_runner(graph, recorder, seed)
    noise_rng = np.random.default_rng(
        (seed * 2654435761 + hash((algorithm.key, variant.value))) & 0xFFFFFFFF
    )
    noise = 1.0 + float(np.clip(noise_rng.normal(0.0, RUNTIME_NOISE_SIGMA),
                                -0.015, 0.015))
    runtime = TimingModel(device).estimate_ms(recorder.stats) * noise
    if faults is not None:
        runtime = faults.perf_finish(output, runtime)
    return PerfRun(
        algorithm=algorithm.key,
        variant=variant,
        device=device,
        output=output,
        stats=recorder.stats,
        runtime_ms=runtime,
        rounds=recorder.stats.rounds,
    )


def algorithm_plan(algorithm) -> AccessPlan:
    """Fetch the ACCESS_PLAN declared by the algorithm's module."""
    import importlib

    module = importlib.import_module(algorithm.module)
    try:
        return module.ACCESS_PLAN
    except AttributeError:
        raise StudyError(
            f"module {algorithm.module} does not declare ACCESS_PLAN"
        ) from None
