"""Performance-level execution engine.

Runs the algorithms as vectorized rounds over numpy arrays while a
:class:`~repro.perf.engine.Recorder` counts every shared-memory access
by its site's access kind; the timing model then prices the counts for
a device.  See DESIGN.md Section 2 for the two-level simulator split.
"""

from repro.perf.engine import PerfRun, Recorder, run_algorithm
from repro.perf.profiler import RunProfile, compare_profiles, profile_run
from repro.perf.visibility import DelayedView

__all__ = [
    "PerfRun",
    "Recorder",
    "run_algorithm",
    "DelayedView",
    "RunProfile",
    "profile_run",
    "compare_profiles",
]
