"""Trace record/replay: run the functional execution once, price it
per device.

The recorded access trace of a performance-level run depends on the
device only through ``plain_staleness_rounds`` (the register-caching
visibility constant), and the run-to-run noise term is seeded by
(seed, algorithm, variant) alone.  Everything *else* the device
contributes — cache geometry, atomic penalties, clock — enters only
when the :class:`~repro.gpu.timing.TimingModel` prices the recorded
:class:`~repro.gpu.timing.AccessStats`.  So a sweep over four devices
need not execute the vectorized algorithm four times: devices sharing
a staleness constant replay one cached trace, and pricing a trace costs
microseconds instead of a full numpy execution.

This module holds the cache; the record/replay entry points live in
:mod:`repro.perf.engine` (``record_trace`` / ``replay_trace``), which
remains the single place that runs ``perf_runner``.

Cache key
---------

``(algorithm, graph fingerprint, variant, seed, staleness rounds,
access-plan fingerprint)``.  The graph fingerprint covers structure and
weights, so a rescaled suite input or a different weight seed can never
alias a cached trace; the plan fingerprint covers every access site's
kind/order/width, so editing an algorithm's ``ACCESS_PLAN`` invalidates
its traces (including any persisted by an older build).

Layers
------

* **in-memory** — a plain dict, shared by every run of one
  :class:`~repro.core.study.Study` (and everything else holding the
  cache object).  Retains output arrays by default so ``last_run``
  consumers and validation keep working.
* **on-disk** (optional) — one JSON file per trace under ``disk_dir``,
  written atomically, holding the stats and the output *fingerprint*
  but never the output arrays.  This is what lets parallel sweep
  workers and successive bench sessions share recordings.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import zlib
from dataclasses import dataclass, fields
from pathlib import Path

from repro.core.variants import Variant
from repro.gpu.timing import AccessStats
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry
from repro.utils.atomicio import atomic_write_text

TRACE_FORMAT = 2
"""On-disk trace format version; bump to invalidate persisted traces.
Format 2 adds a CRC32 content checksum (``crc``) over the payload so
bit-flipped or hand-edited files are quarantined instead of trusted."""

DEGRADE_AFTER = 3
"""Consecutive disk-write errors before the cache degrades to
memory-only operation."""

ANY_STALENESS = -1
"""Wildcard staleness class for recordings that never consumed the
constant.

Only executions that actually *use* ``staleness_rounds`` (baseline MIS,
whose polling loop reads delayed values) differ between staleness
classes; every other algorithm's trace is identical on all devices.
The recorder tracks consumption, and :func:`~repro.perf.engine
.record_trace` keys unconsuming recordings with this wildcard so one
functional execution serves the whole device table."""


@dataclass
class Trace:
    """One recorded functional execution, ready to be priced."""

    algorithm: str
    variant: Variant
    seed: int
    staleness_rounds: int
    graph_fp: str
    plan_fp: str
    stats: AccessStats
    output_fp: str
    #: output arrays of the recording run; ``None`` when the trace was
    #: re-loaded from disk (outputs are never persisted)
    output: dict | None

    @property
    def rounds(self) -> int:
        return int(self.stats.rounds)

    def key(self) -> tuple:
        return trace_key(self.algorithm, self.graph_fp, self.variant,
                         self.seed, self.staleness_rounds, self.plan_fp)

    def without_output(self) -> "Trace":
        if self.output is None:
            return self
        return Trace(self.algorithm, self.variant, self.seed,
                     self.staleness_rounds, self.graph_fp, self.plan_fp,
                     self.stats, self.output_fp, output=None)


def trace_key(algorithm: str, graph_fp: str, variant: Variant, seed: int,
              staleness_rounds: int, plan_fp: str) -> tuple:
    """The cache key of one functional execution."""
    return (algorithm, graph_fp, variant.value, int(seed),
            int(staleness_rounds), plan_fp)


def plan_fingerprint(plan) -> str:
    """Stable digest of an :class:`~repro.core.transform.AccessPlan`.

    Covers every site's name, kind, width, store/RMW role, sharing, and
    memory order — any change to the access plan changes the
    fingerprint and therefore invalidates cached traces (in memory and
    on disk).  Cached per plan object: plans are frozen module-level
    constants.
    """
    cached = _PLAN_FPS.get(id(plan))
    if cached is not None and cached[0] is plan:
        return cached[1]
    parts = [plan.algorithm]
    for s in plan.sites:
        parts.append(f"{s.name}|{s.kind.value}|{s.elem_bytes}|"
                     f"{int(s.is_store)}|{int(s.is_rmw)}|{int(s.shared)}|"
                     f"{s.order.value}")
    fp = hashlib.sha256("\n".join(parts).encode()).hexdigest()[:32]
    _PLAN_FPS[id(plan)] = (plan, fp)
    return fp


#: id -> (plan, fingerprint); the plan reference keeps ids from being
#: recycled under the cache's feet
_PLAN_FPS: dict[int, tuple] = {}


def output_fingerprint(output: dict) -> str:
    """Content digest of a run's output arrays (dtype/shape/bytes)."""
    import numpy as np

    h = hashlib.sha256()
    for name in sorted(output):
        arr = np.asarray(output[name])
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()[:32]


def stable_config_hash(algorithm: str, variant: Variant) -> int:
    """Deterministic stand-in for ``hash((algorithm, variant.value))``.

    Python's string hash is randomized per interpreter process, so the
    historical seeding made simulated runtimes differ between
    invocations (and would have differed per pool worker).  CRC32 is
    stable everywhere; see CHANGES.md for the compatibility note.
    """
    return zlib.crc32(f"{algorithm}:{variant.value}".encode())


def payload_crc(payload: dict) -> int:
    """CRC32 of a disk payload's content, excluding the ``crc`` field.

    Canonical (sorted-keys) JSON, so the digest is independent of the
    key order the file happens to use."""
    body = {k: v for k, v in payload.items() if k != "crc"}
    return zlib.crc32(json.dumps(body, sort_keys=True).encode())


def _stats_to_dict(stats: AccessStats) -> dict:
    return {f.name: getattr(stats, f.name) for f in fields(stats)}


def _stats_from_dict(data: dict) -> AccessStats:
    stats = AccessStats()
    for f in fields(stats):
        value = data[f.name]
        setattr(stats, f.name,
                int(value) if f.name == "rounds" else float(value))
    return stats


class TraceCache:
    """In-memory + optional on-disk store of recorded traces.

    Parameters
    ----------
    disk_dir:
        Directory for the persistent layer (created on first write);
        ``None`` keeps the cache memory-only.
    retain_outputs:
        Keep the recording run's output arrays in the memory layer so
        replays can hand them back (needed by validation and
        ``last_run.output`` consumers).  Outputs never reach disk.
    """

    def __init__(self, disk_dir: str | Path | None = None,
                 retain_outputs: bool = True) -> None:
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.retain_outputs = retain_outputs
        self._memory: dict[tuple, Trace] = {}
        self.recorded = 0
        self.memory_hits = 0
        self.disk_hits = 0
        #: corrupt disk files moved aside (self-healing storage)
        self.quarantined = 0
        #: total disk-write failures observed (ENOSPC, EIO, ...)
        self.disk_errors = 0
        #: true once the disk layer has been abandoned after
        #: ``DEGRADE_AFTER`` consecutive write errors; sticky for the
        #: cache's lifetime — recreate the cache to retry the disk
        self.degraded = False
        self._consecutive_disk_errors = 0

    def __len__(self) -> int:
        return len(self._memory)

    def _count_event(self, event: str) -> None:
        reg = get_registry()
        if reg.enabled:
            reg.counter("repro_trace_cache_events_total",
                        "Trace cache lookups and stores by outcome",
                        ("event",), scope=SCOPE_PROCESS).inc(1, event)

    def _publish_disk(self) -> None:
        reg = get_registry()
        if not reg.enabled or self.disk_dir is None:
            return
        entries, nbytes = self.disk_usage()
        reg.gauge("repro_trace_cache_disk_entries",
                  "Traces in the on-disk cache layer",
                  scope=SCOPE_PROCESS).set(entries)
        reg.gauge("repro_trace_cache_disk_bytes",
                  "Bytes held by the on-disk trace cache layer",
                  scope=SCOPE_PROCESS).set(nbytes)

    # ------------------------------------------------------------------
    def lookup(self, key: tuple, need_output: bool = False) -> Trace | None:
        """A cached trace for ``key``, or ``None``.

        ``need_output=True`` treats a trace without retained output
        arrays as a miss (the caller will re-record), since disk traces
        and output-stripped memory traces cannot satisfy validation.
        """
        trace = self._memory.get(key)
        if trace is not None:
            if trace.output is not None or not need_output:
                self.memory_hits += 1
                self._count_event("memory_hit")
                return trace
            # cached but output-stripped: the caller must re-record
            self._count_event("re_record_miss")
            return None
        if need_output or self.disk_dir is None or self.degraded:
            self._count_event("miss")
            return None
        trace = self._read_disk(key)
        if trace is not None:
            self.disk_hits += 1
            self._count_event("disk_hit")
            self._memory[key] = trace
        else:
            self._count_event("miss")
        return trace

    def store(self, trace: Trace) -> None:
        """Insert a freshly recorded trace into both layers.

        A disk-write failure never loses the trace (the memory layer
        already has it); after ``DEGRADE_AFTER`` consecutive failures
        the cache stops touching the disk entirely (memory-only
        degraded mode) instead of paying a doomed syscall per record.
        """
        self.recorded += 1
        self._count_event("record")
        key = trace.key()
        self._memory[key] = (trace if self.retain_outputs
                             else trace.without_output())
        if self.disk_dir is None or self.degraded:
            return
        try:
            self._write_disk(key, trace)
        except OSError:
            self.disk_errors += 1
            self._consecutive_disk_errors += 1
            reg = get_registry()
            if reg.enabled:
                reg.counter("repro_host_disk_errors_total",
                            "Trace-cache disk writes that failed",
                            scope=SCOPE_PROCESS).inc(1)
            if self._consecutive_disk_errors >= DEGRADE_AFTER:
                self.degraded = True
                if reg.enabled:
                    reg.gauge("repro_host_degraded_mode",
                              "1 while the trace cache runs memory-only "
                              "after repeated disk errors",
                              scope=SCOPE_PROCESS).set(1)
        else:
            self._consecutive_disk_errors = 0
            self._publish_disk()

    # ------------------------------------------------------------------
    # Disk layer maintenance
    # ------------------------------------------------------------------
    def _disk_files(self) -> list[Path]:
        if self.disk_dir is None or not self.disk_dir.is_dir():
            return []
        return sorted(self.disk_dir.glob("trace-*.json"))

    def disk_usage(self) -> tuple[int, int]:
        """(entry count, total bytes) of the on-disk layer."""
        entries = 0
        nbytes = 0
        for path in self._disk_files():
            try:
                nbytes += path.stat().st_size
            except OSError:
                continue  # concurrently pruned by another process
            entries += 1
        return entries, nbytes

    def _quarantine_files(self) -> list[Path]:
        """``*.corrupt`` files parked by :meth:`_quarantine`."""
        if self.disk_dir is None or not self.disk_dir.is_dir():
            return []
        return sorted(self.disk_dir.glob("trace-*.json.corrupt"))

    def prune(self, max_bytes: int) -> tuple[int, int]:
        """Evict traces until the disk layer fits ``max_bytes``;
        returns (files removed, bytes freed).

        The on-disk layer otherwise grows without bound — every new
        (algorithm, graph, variant, seed, staleness, plan) combination
        adds a file and nothing ever removes one.  ``*.corrupt``
        quarantine files count toward the byte budget too (they occupy
        the same disk) and are evicted *first*: they serve no lookup
        and exist only for post-mortems, so they must never crowd out
        live traces (evictions are counted in
        ``repro_trace_prune_quarantined``).  Live traces then go
        oldest-first by mtime, approximating LRU: :meth:`_write_disk`
        timestamps recordings and re-recorded traces overwrite
        (refreshing) their file.  The in-memory layer is untouched.
        Safe to run while other processes read the cache: a
        concurrently deleted file is simply treated as a miss by them.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        stamped = []
        total = 0
        # quarantined files sort ahead of every live trace (rank 0)
        for rank, paths in ((0, self._quarantine_files()),
                            (1, self._disk_files())):
            for path in paths:
                try:
                    st = path.stat()
                except OSError:
                    continue
                stamped.append((rank, st.st_mtime, path, st.st_size))
                total += st.st_size
        stamped.sort()
        removed = 0
        freed = 0
        quarantined_removed = 0
        for rank, _, path, size in stamped:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            freed += size
            removed += 1
            if rank == 0:
                quarantined_removed += 1
        if quarantined_removed:
            reg = get_registry()
            if reg.enabled:
                reg.counter("repro_trace_prune_quarantined",
                            "Quarantined (*.corrupt) trace files evicted "
                            "by prune", scope=SCOPE_PROCESS
                            ).inc(quarantined_removed)
        self._publish_disk()
        return removed, freed

    # ------------------------------------------------------------------
    def _path(self, key: tuple) -> Path:
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:32]
        return self.disk_dir / f"trace-{digest}.json"

    def _write_disk(self, key: tuple, trace: Trace) -> None:
        self.disk_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": TRACE_FORMAT,
            "algorithm": trace.algorithm,
            "variant": trace.variant.value,
            "seed": trace.seed,
            "staleness_rounds": trace.staleness_rounds,
            "graph_fp": trace.graph_fp,
            "plan_fp": trace.plan_fp,
            "stats": _stats_to_dict(trace.stats),
            "output_fp": trace.output_fp,
        }
        payload["crc"] = payload_crc(payload)
        atomic_write_text(self._path(key), json.dumps(payload))

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt disk file aside and count it.

        The ``.corrupt`` name falls outside the ``trace-*.json`` glob,
        so quarantined files stop being read or served — they stay on
        disk for post-mortem inspection, count toward :meth:`prune`'s
        byte budget, and are the first thing prune evicts.  The slot
        becomes a plain miss and the next recording heals it.
        """
        with contextlib.suppress(OSError):
            os.replace(path, path.with_name(path.name + ".corrupt"))
        self.quarantined += 1
        reg = get_registry()
        if reg.enabled:
            reg.counter("repro_host_corrupt_quarantined_total",
                        "Corrupt trace-cache files moved aside, by cause",
                        ("cause",), scope=SCOPE_PROCESS).inc(1, reason)

    def _read_disk(self, key: tuple) -> Trace | None:
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            return None  # missing (or unreadable) file: treat as a miss
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            self._quarantine(path, "torn")
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, "shape")
            return None
        if payload.get("format") != TRACE_FORMAT:
            return None  # older build's file: a miss, re-recorded over
        if payload.get("crc") != payload_crc(payload):
            self._quarantine(path, "checksum")
            return None
        recovered = (payload.get("algorithm"), payload.get("graph_fp"),
                     payload.get("variant"), payload.get("seed"),
                     payload.get("staleness_rounds"),
                     payload.get("plan_fp"))
        if recovered != key:
            return None  # hash-prefix collision or stale schema
        try:
            stats = _stats_from_dict(payload["stats"])
        except (KeyError, TypeError, ValueError):
            return None
        return Trace(
            algorithm=payload["algorithm"],
            variant=Variant(payload["variant"]),
            seed=int(payload["seed"]),
            staleness_rounds=int(payload["staleness_rounds"]),
            graph_fp=payload["graph_fp"],
            plan_fp=payload["plan_fp"],
            stats=stats,
            output_fp=payload.get("output_fp", ""),
            output=None,
        )
