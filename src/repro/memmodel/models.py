"""The memory-model zoo: pluggable consistency semantics.

The paper fixes one semantics — relaxed atomics served at L2 with PLAIN
register caching (Section IV) — so its "cost of removing races" numbers
are a single point in a design space.  A :class:`MemoryModel` names the
knobs the simulator consults so that point becomes one of several:

* **structural** knobs decide how the executor runs — whether plain
  loads may be register-cached, whether non-atomic stores sit in a
  per-thread store buffer, whether buffered stores may drain out of
  program order, and whether a thread forwards its own buffered stores
  to its loads;
* **ordering** knobs decide what each :class:`MemoryOrder` means —
  which atomics flush the store buffer (release publication), which
  invalidate the register cache (acquire visibility), and which scopes
  a block-scoped release publishes to;
* **pricing** knobs decide what the perf engine charges — the model's
  ``order_floor`` is applied over every shared atomic site's declared
  order before the :class:`~repro.gpu.timing.TimingModel` prices it.

Concrete models:

``SC``
    Sequential consistency: no register caching, no store buffering.
    Every execution is an interleaving of program-order operations.
``TSO``
    x86-style total store order: per-thread FIFO store buffers with
    store-to-load forwarding.  Generalizes (and replaces) the old
    ``weak_memory=True`` executor flag's ad-hoc buffer.  Atomics are
    locked operations: they always drain and fully synchronize.
``RelaxedGPU``
    The paper's semantics.  Register caching on; with ``buffered=True``
    non-atomic stores drain *out of order* (any entry not preceded by an
    older same-address entry), and relaxed atomics neither drain the
    buffer nor invalidate the cache — only release/acquire orderings
    do.  ``buffered=False`` (the executor default) is the eager-drain
    special case: every store is immediately visible, which is one
    legal execution of the relaxed model and is bit-identical to the
    pre-zoo executor.
``PTXScoped``
    PTX scoped atomics: like buffered ``RelaxedGPU`` plus scope
    semantics — a block-scoped release publishes the store buffer to
    *same-block* threads only (entries become block-visible instead of
    draining to global memory), while device/system releases drain
    globally.  ``min_order`` lifts every atomic's declared order at
    both execution and pricing time, so ``ptx:acq_rel`` answers "what
    would the race-free variants cost under acquire/release?".

Models are immutable and stateless: all execution state (buffers,
caches, clocks) lives in the executor / detector that consults them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.gpu.accesses import MemoryOrder, Scope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.transform import AccessPlan

__all__ = ["MemoryModel", "SC", "TSO", "RelaxedGPU", "PTXScoped",
           "DEFAULT_MODEL", "get_model", "resolve_model", "model_keys"]

#: strength lattice of the libcu++ orderings (acquire and release are
#: incomparable one-sided orders of equal rank)
ORDER_RANK = {
    MemoryOrder.RELAXED: 0,
    MemoryOrder.ACQUIRE: 1,
    MemoryOrder.RELEASE: 1,
    MemoryOrder.ACQ_REL: 2,
    MemoryOrder.SEQ_CST: 3,
}

#: orders with a release (publish) side
_RELEASING = (MemoryOrder.RELEASE, MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST)
#: orders with an acquire (observe) side
_ACQUIRING = (MemoryOrder.ACQUIRE, MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST)


class MemoryModel:
    """Base class: the *strongest* reasonable semantics.

    Subclasses override the structural attributes and the per-order
    predicates.  The base behaves like SC so that forgetting an
    override errs on the side of fewer weak behaviors, never more.
    """

    #: canonical spec string (what ``get_model`` parses back)
    key: str = "sc"
    #: human-readable name for reports
    name: str = "memory model"

    # -- structural knobs ------------------------------------------------
    #: may the compiler keep plainly-loaded values in registers?
    register_cache_plain: bool = False
    #: do non-atomic stores sit in a per-thread store buffer?
    buffers_stores: bool = False
    #: may buffered stores drain out of program order?  (False = FIFO:
    #: only the oldest entry of each buffer is eligible to drain)
    reorders_stores: bool = False
    #: does a thread forward its own buffered stores to its loads
    #: without draining?  (False = reading over a buffered store drains
    #: the buffer first, the old ``weak_memory`` behavior)
    forwards_stores: bool = False
    #: forced-drain order when the model must flush several entries at
    #: once: ``"fifo"`` (program order) or ``"address"`` (lowest
    #: address first — the relaxed GPU's visible reordering)
    drain_policy: str = "fifo"
    #: fixed buffer capacity, or None to use the executor's setting
    store_buffer_capacity: int | None = None
    #: pricing floor applied over every shared atomic site's order
    order_floor: MemoryOrder = MemoryOrder.SEQ_CST

    # -- ordering predicates ---------------------------------------------
    def runtime_order(self, order: MemoryOrder) -> MemoryOrder:
        """The order an atomic declared with ``order`` executes at."""
        if ORDER_RANK[order] < ORDER_RANK[self.order_floor]:
            return self.order_floor
        return order

    def atomic_drains(self, order: MemoryOrder) -> bool:
        """Does an atomic at ``order`` flush the issuing thread's store
        buffer (publish its prior non-atomic stores)?"""
        return True

    def acquire_syncs(self, order: MemoryOrder) -> bool:
        """Does an atomic read at ``order`` invalidate the register
        cache (force later plain loads back to memory) and, for the
        race detector, acquire the location's release clock?"""
        return True

    def release_syncs(self, order: MemoryOrder) -> bool:
        """Does an atomic write at ``order`` publish a happens-before
        edge to later acquiring reads of the same location?"""
        return True

    def release_promotes_block(self, order: MemoryOrder,
                               scope: Scope) -> bool:
        """Does a releasing atomic at ``scope`` publish the store buffer
        to *same-block* threads only (instead of draining globally)?
        Only :class:`PTXScoped` distinguishes scopes."""
        return False

    def fence_drains(self, order: MemoryOrder) -> bool:
        """Does a ``__threadfence()`` at ``order`` flush the buffer?"""
        return True

    def scope_syncs(self, scope: Scope, same_block: bool) -> bool:
        """Is a release at ``scope`` visible to an acquirer that is
        (``same_block``) / is not in the releasing thread's block?
        Scope-blind models treat every scope as device-wide."""
        return True

    # -- batched tier ----------------------------------------------------
    @property
    def batch_eligible(self) -> bool:
        """May launches under this model use the vectorized batched
        tier?  Only the paper's eager default is proven bit-identical
        there; every other model keeps exact interpreter semantics."""
        return False

    # -- pricing ---------------------------------------------------------
    def apply_to_plan(self, plan: "AccessPlan") -> "AccessPlan":
        """Copy of ``plan`` with every shared site's order lifted to at
        least the model's ``order_floor`` — the hook that lets the perf
        engine price race-free variants under stronger models.

        All shared sites are lifted, not just the plan's atomic ones:
        the race-removal transform converts shared volatile/plain sites
        into atomics that inherit the site's order, and those converted
        atomics are exactly what a stronger model must price.  Order is
        only ever charged on variant-effective atomic kinds, so lifting
        a site that stays non-atomic costs nothing.
        """
        from dataclasses import replace

        from repro.core.transform import AccessPlan

        if self.order_floor is MemoryOrder.RELAXED:
            return plan
        sites = tuple(
            replace(s, order=self.runtime_order(s.order))
            if s.shared else s
            for s in plan.sites)
        return AccessPlan(plan.algorithm, sites)

    def describe(self) -> str:
        bits = []
        bits.append("register caching" if self.register_cache_plain
                    else "no register caching")
        if self.buffers_stores:
            bits.append("store buffers ("
                        + ("out-of-order" if self.reorders_stores
                           else "FIFO")
                        + (", forwarding" if self.forwards_stores else "")
                        + ")")
        else:
            bits.append("eager stores")
        if self.order_floor is not MemoryOrder.RELAXED:
            bits.append(f"atomics ≥ {self.order_floor.value}")
        return f"{self.name}: " + ", ".join(bits)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.key!r}>"


class SC(MemoryModel):
    """Sequential consistency: interleaving semantics, nothing weaker."""

    key = "sc"
    name = "sequential consistency"
    register_cache_plain = False
    buffers_stores = False
    order_floor = MemoryOrder.SEQ_CST


class TSO(MemoryModel):
    """x86-style total store order: per-thread FIFO store buffers with
    store-to-load forwarding; atomics are locked operations that drain
    and fully synchronize.  Note TSO *forbids* the message-passing
    reorder — the buffer is FIFO, so the payload always drains before
    the flag — while store-buffering (SB) is observable."""

    key = "tso"
    name = "x86-TSO"
    register_cache_plain = False
    buffers_stores = True
    reorders_stores = False
    forwards_stores = True
    drain_policy = "fifo"
    order_floor = MemoryOrder.SEQ_CST

    def __init__(self, capacity: int | None = None) -> None:
        self.store_buffer_capacity = capacity
        if capacity is not None:
            self.key = f"tso:{capacity}"


class RelaxedGPU(MemoryModel):
    """The paper's semantics: register caching, relaxed atomics with no
    ordering.  ``buffered=True`` adds out-of-order store buffers (the
    litmus-capable configuration); ``buffered=False`` is the eager
    special case the executor defaults to — bit-identical to the
    pre-zoo simulator."""

    name = "relaxed GPU"
    register_cache_plain = True
    reorders_stores = True
    forwards_stores = False
    drain_policy = "address"
    order_floor = MemoryOrder.RELAXED

    def __init__(self, buffered: bool = True) -> None:
        self.buffers_stores = buffered
        self.key = "relaxed_gpu" if buffered else "relaxed_gpu:eager"

    def atomic_drains(self, order: MemoryOrder) -> bool:
        return order in _RELEASING

    def acquire_syncs(self, order: MemoryOrder) -> bool:
        return order in _ACQUIRING

    def release_syncs(self, order: MemoryOrder) -> bool:
        return order in _RELEASING

    @property
    def batch_eligible(self) -> bool:
        return not self.buffers_stores


class PTXScoped(MemoryModel):
    """PTX scoped atomics: buffered relaxed-GPU weakness plus scope
    semantics.  A block(cta)-scoped release publishes buffered stores to
    same-block threads only; device/system releases drain globally.
    ``min_order`` lifts every atomic's declared order at execution and
    pricing time (``ptx:acq_rel`` prices the acquire/release world)."""

    name = "PTX scoped"
    register_cache_plain = True
    buffers_stores = True
    reorders_stores = True
    forwards_stores = True
    drain_policy = "address"

    def __init__(self, min_order: MemoryOrder = MemoryOrder.RELAXED) -> None:
        self.order_floor = min_order
        self.key = ("ptx" if min_order is MemoryOrder.RELAXED
                    else f"ptx:{min_order.value}")

    def atomic_drains(self, order: MemoryOrder) -> bool:
        return order in _RELEASING

    def acquire_syncs(self, order: MemoryOrder) -> bool:
        return order in _ACQUIRING

    def release_syncs(self, order: MemoryOrder) -> bool:
        return order in _RELEASING

    def release_promotes_block(self, order: MemoryOrder,
                               scope: Scope) -> bool:
        return order in _RELEASING and scope is Scope.BLOCK

    def scope_syncs(self, scope: Scope, same_block: bool) -> bool:
        return same_block if scope is Scope.BLOCK else True


#: the executor's default: the paper's semantics with eager stores —
#: bit-identical to the simulator before the model zoo existed
DEFAULT_MODEL = RelaxedGPU(buffered=False)


def get_model(spec: str) -> MemoryModel:
    """Parse a model spec string.

    ``sc`` · ``tso`` · ``tso:<capacity>`` · ``relaxed_gpu`` (buffered,
    the litmus configuration) · ``relaxed_gpu:eager`` (the executor
    default) · ``ptx`` · ``ptx:<order>`` (e.g. ``ptx:acq_rel``).
    """
    base, _, arg = spec.strip().lower().partition(":")
    if base == "sc":
        if arg:
            raise ReproError(f"sc takes no argument, got {spec!r}")
        return SC()
    if base == "tso":
        if not arg:
            return TSO()
        try:
            capacity = int(arg)
        except ValueError:
            raise ReproError(
                f"tso argument must be a buffer capacity, got {spec!r}"
            ) from None
        if capacity < 1:
            raise ReproError(
                f"tso buffer capacity must be >= 1, got {spec!r}")
        return TSO(capacity)
    if base == "relaxed_gpu":
        if arg == "eager":
            return RelaxedGPU(buffered=False)
        if arg:
            raise ReproError(
                f"unknown relaxed_gpu argument {arg!r} (only 'eager')")
        return RelaxedGPU(buffered=True)
    if base == "ptx":
        if not arg:
            return PTXScoped()
        try:
            order = MemoryOrder(arg)
        except ValueError:
            raise ReproError(
                f"unknown memory order {arg!r} in {spec!r}; known: "
                f"{[o.value for o in MemoryOrder]}") from None
        return PTXScoped(min_order=order)
    raise ReproError(
        f"unknown memory model {spec!r}; known: {model_keys()}")


def resolve_model(model: "MemoryModel | str | None") -> MemoryModel:
    """Coerce a constructor argument: None → the default, str → parsed."""
    if model is None:
        return DEFAULT_MODEL
    if isinstance(model, str):
        return get_model(model)
    if isinstance(model, MemoryModel):
        return model
    raise ReproError(
        f"memory_model must be a MemoryModel, spec string, or None, "
        f"got {type(model).__name__}")


def model_keys() -> list[str]:
    """The canonical zoo (argument-free spellings)."""
    return ["sc", "tso", "relaxed_gpu", "relaxed_gpu:eager", "ptx",
            "ptx:acq_rel"]
