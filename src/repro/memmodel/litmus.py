"""Litmus tests: small programs whose *outcome sets* characterize a
memory model.

Each :class:`LitmusTest` is a classic shape from the memory-model
literature (MP, SB, LB, CoRR, IRIW) plus GPU-scoped variants, written
as SIMT kernels against two shared locations ``x``/``y`` and an ``out``
array of observer registers.  The runner drives the existing
:class:`repro.check.explore.ScheduleExplorer` (sleep-set DPOR, no
preemption bound) over every schedule — including, under buffered
models, the *store-buffer drain agents* the executor exposes as
schedulable pseudo-threads — and collects the set of observed register
outcomes.  A model passes a test iff the observed set equals the
model's allowed set: nothing forbidden shows up, and every allowed weak
behavior is actually reachable.

Conventions
-----------
* ``x`` and ``y`` start at 0; writers publish 1.
* Observer registers are written with **atomic** stores: atomics are
  never store-buffered, so outcomes are fully in memory the moment the
  observer thread issues them — independent of drain timing.
* Plain loads are ``VOLATILE`` unless the test is *about* register
  caching (CoRR).
* The executor never reorders a thread's own issue stream (loads and
  stores leave in program order); all weakness comes from store
  visibility.  That makes LB's ``(1,1)`` forbidden under every model —
  a documented property of the simulator, tested here.

Allowed sets are *derived from the model's structural knobs* (does it
buffer? reorder? cache registers? promote block-scoped releases?), so
parameterized models (``tso:4``, ``ptx:acq_rel``) get correct tables
without per-key case analysis.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.check.explore import ExploreBudget, RunOutcome, ScheduleExplorer
from repro.errors import DeadlockError, ReproError
from repro.gpu.accesses import AccessKind, DType, MemoryOrder, Scope
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor
from repro.memmodel.models import MemoryModel, get_model, model_keys

__all__ = ["LitmusTest", "LitmusResult", "CORPUS", "LITMUS_BUDGET",
           "run_litmus", "run_corpus", "format_table"]

PLAIN = AccessKind.PLAIN
VOLATILE = AccessKind.VOLATILE
ATOMIC = AccessKind.ATOMIC

#: exhaustive-by-construction budget: the corpus programs are tiny, so
#: the explorer finishes the full trace space well inside these bounds.
#: No preemption bound — litmus outcomes live in the preempting corners.
LITMUS_BUDGET = ExploreBudget(max_schedules=20_000,
                              max_steps_per_run=4_000,
                              max_seconds=120.0,
                              preemption_bound=None)

# ----------------------------------------------------------------------
# Outcome-set helpers
# ----------------------------------------------------------------------

_ALL2 = frozenset(itertools.product((0, 1), repeat=2))
#: message passing without the reorder: flag seen ⇒ data seen
MP_SAFE = frozenset({(0, 0), (0, 1), (1, 1)})
#: store buffering forbidden (SC): both-miss impossible
SB_SC = frozenset({(0, 1), (1, 0), (1, 1)})
#: load buffering: (1,1) needs load-store reordering, which the
#: executor never performs
LB_SET = frozenset({(0, 0), (0, 1), (1, 0)})
#: read-read coherence under register caching: both loads collapse to
#: one value
CORR_CACHED = frozenset({(0, 0), (1, 1)})
CORR_UNCACHED = frozenset({(0, 0), (0, 1), (1, 1)})
#: IRIW: the two readers may never disagree on the store order —
#: drains hit one shared memory in a single total order
IRIW_SET = frozenset(itertools.product((0, 1), repeat=4)) - {(1, 0, 1, 0)}


def _weak_mp(model: MemoryModel) -> bool:
    """Can a plain flag store overtake an older plain data store?"""
    return model.buffers_stores and model.reorders_stores


def _relaxed_atomic_unordered(model: MemoryModel) -> bool:
    """Does a relaxed atomic flag leave older plain stores buffered?"""
    return (_weak_mp(model)
            and not model.atomic_drains(
                model.runtime_order(MemoryOrder.RELAXED)))


def _block_promoting(model: MemoryModel) -> bool:
    """Does a block-scoped release publish to the block only?"""
    return model.release_promotes_block(
        model.runtime_order(MemoryOrder.RELEASE), Scope.BLOCK)


# ----------------------------------------------------------------------
# The corpus
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LitmusTest:
    """One litmus shape: a kernel, its launch geometry, and the
    model-parameterized allowed outcome set."""

    name: str
    title: str
    kernel: Callable
    num_threads: int
    #: outcome registers (length of the ``out`` array)
    out_len: int
    #: allowed outcome tuples as a function of the model
    allowed: Callable[[MemoryModel], frozenset]
    block_dim: int = 32
    locations: int = 2

    def setup(self, mem: GlobalMemory):
        x = mem.alloc("x", 1, DType.I32)
        y = mem.alloc("y", 1, DType.I32) if self.locations > 1 else None
        out = mem.alloc("out", self.out_len, DType.I32)
        handles = (x, y, out) if y is not None else (x, out)
        return handles


def _mp_kernel(ctx, x, y, out):
    """MP: data then flag, both plain; reader polls once."""
    if ctx.tid == 0:
        yield ctx.store(x, 0, 1, PLAIN)                    # data
        yield ctx.store(y, 0, 1, PLAIN)                    # flag
    else:
        r1 = yield ctx.load(y, 0, VOLATILE)
        r2 = yield ctx.load(x, 0, VOLATILE)
        yield ctx.store(out, 0, r1, ATOMIC)
        yield ctx.store(out, 1, r2, ATOMIC)


def _mp_rel_acq_kernel(ctx, x, y, out):
    """MP with a release flag store and an acquire flag load."""
    if ctx.tid == 0:
        yield ctx.store(x, 0, 1, PLAIN)
        yield ctx.store(y, 0, 1, ATOMIC, order=MemoryOrder.RELEASE)
    else:
        r1 = yield ctx.load(y, 0, ATOMIC, order=MemoryOrder.ACQUIRE)
        r2 = yield ctx.load(x, 0, VOLATILE)
        yield ctx.store(out, 0, r1, ATOMIC)
        yield ctx.store(out, 1, r2, ATOMIC)


def _mp_relaxed_kernel(ctx, x, y, out):
    """MP with a *relaxed* atomic flag: atomic, but no ordering."""
    if ctx.tid == 0:
        yield ctx.store(x, 0, 1, PLAIN)
        yield ctx.store(y, 0, 1, ATOMIC, order=MemoryOrder.RELAXED)
    else:
        r1 = yield ctx.load(y, 0, ATOMIC, order=MemoryOrder.RELAXED)
        r2 = yield ctx.load(x, 0, VOLATILE)
        yield ctx.store(out, 0, r1, ATOMIC)
        yield ctx.store(out, 1, r2, ATOMIC)


def _sb_kernel(ctx, x, y, out):
    """SB: each thread stores its location, then loads the other's."""
    if ctx.tid == 0:
        yield ctx.store(x, 0, 1, PLAIN)
        r = yield ctx.load(y, 0, VOLATILE)
        yield ctx.store(out, 0, r, ATOMIC)
    else:
        yield ctx.store(y, 0, 1, PLAIN)
        r = yield ctx.load(x, 0, VOLATILE)
        yield ctx.store(out, 1, r, ATOMIC)


def _sb_fence_kernel(ctx, x, y, out):
    """SB with a ``fence.sc`` between the store and the load."""
    if ctx.tid == 0:
        yield ctx.store(x, 0, 1, PLAIN)
        yield ctx.fence_sc()
        r = yield ctx.load(y, 0, VOLATILE)
        yield ctx.store(out, 0, r, ATOMIC)
    else:
        yield ctx.store(y, 0, 1, PLAIN)
        yield ctx.fence_sc()
        r = yield ctx.load(x, 0, VOLATILE)
        yield ctx.store(out, 1, r, ATOMIC)


def _lb_kernel(ctx, x, y, out):
    """LB: each thread loads the other's location, then stores its own."""
    if ctx.tid == 0:
        r = yield ctx.load(x, 0, VOLATILE)
        yield ctx.store(y, 0, 1, PLAIN)
        yield ctx.store(out, 0, r, ATOMIC)
    else:
        r = yield ctx.load(y, 0, VOLATILE)
        yield ctx.store(x, 0, 1, PLAIN)
        yield ctx.store(out, 1, r, ATOMIC)


def _corr_kernel(ctx, x, out):
    """CoRR: one writer; the reader loads the same location twice with
    PLAIN loads — the register-caching probe."""
    if ctx.tid == 0:
        yield ctx.store(x, 0, 1, PLAIN)
    else:
        r1 = yield ctx.load(x, 0, PLAIN)
        r2 = yield ctx.load(x, 0, PLAIN)
        yield ctx.store(out, 0, r1, ATOMIC)
        yield ctx.store(out, 1, r2, ATOMIC)


def _iriw_kernel(ctx, x, y, out):
    """IRIW: independent writers, two readers probing opposite orders."""
    if ctx.tid == 0:
        yield ctx.store(x, 0, 1, PLAIN)
    elif ctx.tid == 1:
        yield ctx.store(y, 0, 1, PLAIN)
    elif ctx.tid == 2:
        r1 = yield ctx.load(x, 0, VOLATILE)
        r2 = yield ctx.load(y, 0, VOLATILE)
        yield ctx.store(out, 0, r1, ATOMIC)
        yield ctx.store(out, 1, r2, ATOMIC)
    else:
        r3 = yield ctx.load(y, 0, VOLATILE)
        r4 = yield ctx.load(x, 0, VOLATILE)
        yield ctx.store(out, 2, r3, ATOMIC)
        yield ctx.store(out, 3, r4, ATOMIC)


def _mp_scoped_kernel(ctx, x, y, out):
    """MP via block(cta)-scoped release/acquire on the flag."""
    if ctx.tid == 0:
        yield ctx.store(x, 0, 1, PLAIN)
        yield ctx.store(y, 0, 1, ATOMIC, order=MemoryOrder.RELEASE,
                        scope=Scope.BLOCK)
    else:
        r1 = yield ctx.load(y, 0, ATOMIC, order=MemoryOrder.ACQUIRE,
                            scope=Scope.BLOCK)
        r2 = yield ctx.load(x, 0, VOLATILE)
        yield ctx.store(out, 0, r1, ATOMIC)
        yield ctx.store(out, 1, r2, ATOMIC)


CORPUS: tuple[LitmusTest, ...] = (
    LitmusTest(
        name="MP", title="message passing, plain flag",
        kernel=_mp_kernel, num_threads=2, out_len=2,
        allowed=lambda m: _ALL2 if _weak_mp(m) else MP_SAFE),
    LitmusTest(
        name="MP+rel+acq", title="message passing, release/acquire",
        kernel=_mp_rel_acq_kernel, num_threads=2, out_len=2,
        allowed=lambda m: MP_SAFE),
    LitmusTest(
        name="MP+rlx", title="message passing, relaxed atomic flag",
        kernel=_mp_relaxed_kernel, num_threads=2, out_len=2,
        allowed=lambda m: (_ALL2 if _relaxed_atomic_unordered(m)
                           else MP_SAFE)),
    LitmusTest(
        name="SB", title="store buffering",
        kernel=_sb_kernel, num_threads=2, out_len=2,
        allowed=lambda m: _ALL2 if m.buffers_stores else SB_SC),
    LitmusTest(
        name="SB+fences", title="store buffering, fence.sc",
        kernel=_sb_fence_kernel, num_threads=2, out_len=2,
        allowed=lambda m: SB_SC),
    LitmusTest(
        name="LB", title="load buffering",
        kernel=_lb_kernel, num_threads=2, out_len=2,
        allowed=lambda m: LB_SET),
    LitmusTest(
        name="CoRR", title="read-read coherence, plain loads",
        kernel=_corr_kernel, num_threads=2, out_len=2, locations=1,
        allowed=lambda m: (CORR_CACHED if m.register_cache_plain
                           else CORR_UNCACHED)),
    LitmusTest(
        name="IRIW", title="independent reads of independent writes",
        kernel=_iriw_kernel, num_threads=4, out_len=4,
        allowed=lambda m: IRIW_SET),
    LitmusTest(
        name="MP+cta/same", title="scoped MP, same block",
        kernel=_mp_scoped_kernel, num_threads=2, out_len=2,
        block_dim=2,
        allowed=lambda m: MP_SAFE),
    LitmusTest(
        name="MP+cta/cross", title="scoped MP, different blocks",
        kernel=_mp_scoped_kernel, num_threads=2, out_len=2,
        block_dim=1,
        allowed=lambda m: _ALL2 if _block_promoting(m) else MP_SAFE),
)

_CORPUS_BY_NAME = {t.name: t for t in CORPUS}


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------

@dataclass
class LitmusResult:
    """Verdict of one (test, model) cell."""

    test: str
    model: str
    allowed: frozenset
    observed: set = field(default_factory=set)
    schedules: int = 0
    complete: bool = False

    @property
    def forbidden_observed(self) -> set:
        return self.observed - self.allowed

    @property
    def missing(self) -> set:
        """Allowed outcomes DPOR never reached (meaningful only when
        the exploration completed)."""
        return set(self.allowed) - self.observed

    @property
    def ok(self) -> bool:
        """No forbidden outcome; and, when the schedule space was
        exhausted, every allowed outcome observed."""
        if self.forbidden_observed:
            return False
        if self.complete:
            return not self.missing
        return True

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        extra = ""
        if self.forbidden_observed:
            extra = f" forbidden={sorted(self.forbidden_observed)}"
        elif self.complete and self.missing:
            extra = f" missing={sorted(self.missing)}"
        return (f"{self.test:14s} {self.model:16s} {status:4s} "
                f"{len(self.observed)}/{len(self.allowed)} outcomes, "
                f"{self.schedules} schedules"
                f"{'' if self.complete else ' (budget hit)'}{extra}")


def _make_runner(test: LitmusTest, model: MemoryModel,
                 budget: ExploreBudget):
    def runner(scheduler, probe=None) -> RunOutcome:
        mem = GlobalMemory()
        handles = test.setup(mem)
        ex = SimtExecutor(mem, scheduler=scheduler,
                          record_events=True,
                          max_steps=budget.max_steps_per_run,
                          memory_model=model,
                          schedulable_drains=True)
        if probe is not None:
            probe.memory = mem
            ex.step_probe = probe
        error: Exception | None = None
        try:
            ex.launch(test.kernel, test.num_threads, *handles,
                      block_dim=test.block_dim)
        except DeadlockError as exc:
            error = exc
        payload = None
        if error is None:
            out = handles[-1]
            payload = tuple(int(v) for v in mem.download(out))
        return RunOutcome(events=ex.events, fingerprint=mem.fingerprint(),
                          error=error, payload=payload)
    return runner


def run_litmus(test: LitmusTest | str, model: MemoryModel | str,
               budget: ExploreBudget = LITMUS_BUDGET) -> LitmusResult:
    """Enumerate one test's outcomes under one model via DPOR."""
    if isinstance(test, str):
        try:
            test = _CORPUS_BY_NAME[test]
        except KeyError:
            raise ReproError(
                f"unknown litmus test {test!r}; known: "
                f"{sorted(_CORPUS_BY_NAME)}") from None
    if isinstance(model, str):
        model = get_model(model)
    result = LitmusResult(test=test.name, model=model.key,
                          allowed=test.allowed(model))

    def on_run(outcome: RunOutcome, log) -> bool:
        if outcome.payload is not None:
            result.observed.add(outcome.payload)
        return False

    explorer = ScheduleExplorer(_make_runner(test, model, budget),
                                mode="dpor", budget=budget,
                                on_run=on_run, state_dedupe=False)
    explore = explorer.explore()
    result.schedules = explore.schedules
    result.complete = explore.complete
    return result


def run_corpus(models: list[str] | None = None,
               tests: list[str] | None = None,
               budget: ExploreBudget = LITMUS_BUDGET) -> list[LitmusResult]:
    """The full (or filtered) corpus × model grid."""
    model_list = [get_model(k)
                  for k in (models or ["sc", "tso", "relaxed_gpu", "ptx"])]
    test_list = ([_CORPUS_BY_NAME[n] for n in tests] if tests
                 else list(CORPUS))
    return [run_litmus(t, m, budget)
            for t in test_list for m in model_list]


def format_table(results: list[LitmusResult]) -> str:
    """A per-test table: one row per model with its outcome set."""
    lines: list[str] = []
    by_test: dict[str, list[LitmusResult]] = {}
    for r in results:
        by_test.setdefault(r.test, []).append(r)
    for name, rows in by_test.items():
        test = _CORPUS_BY_NAME[name]
        lines.append(f"{name} — {test.title}")
        for r in rows:
            status = "ok  " if r.ok else "FAIL"
            outcomes = ",".join(
                "".join(str(b) for b in o) for o in sorted(r.observed))
            lines.append(
                f"  {r.model:16s} {status} "
                f"[{outcomes}] "
                f"({len(r.observed)}/{len(r.allowed)} allowed, "
                f"{r.schedules} schedules"
                f"{'' if r.complete else ', budget hit'})")
            if r.forbidden_observed:
                lines.append(
                    f"    forbidden observed: "
                    f"{sorted(r.forbidden_observed)}")
            if r.complete and r.missing:
                lines.append(
                    f"    allowed but never reached: {sorted(r.missing)}")
        lines.append("")
    ok = sum(1 for r in results if r.ok)
    lines.append(f"{ok}/{len(results)} cells ok "
                 f"(models: {', '.join(sorted({r.model for r in results}))})")
    return "\n".join(lines)
