"""repro.memmodel — pluggable memory consistency models + litmus tests.

:mod:`repro.memmodel.models` defines the :class:`MemoryModel` zoo (SC,
TSO, RelaxedGPU, PTXScoped); :mod:`repro.memmodel.litmus` holds the
litmus corpus and the DPOR-backed outcome enumerator behind the
``repro litmus`` command.
"""

from repro.memmodel.models import (
    DEFAULT_MODEL,
    MemoryModel,
    PTXScoped,
    RelaxedGPU,
    SC,
    TSO,
    get_model,
    model_keys,
    resolve_model,
)

__all__ = ["MemoryModel", "SC", "TSO", "RelaxedGPU", "PTXScoped",
           "DEFAULT_MODEL", "get_model", "resolve_model", "model_keys"]
