"""ECL-MST: minimum spanning tree / forest via data-driven Boruvka.

The baseline ECL-MST (Section II.B.5) records "the best neighbor to
merge next" for each union-find set in a shared ``long long`` array
(weight and edge id packed into one 64-bit value, updated with
atomicMin) and walks the parent array with *implicit path compression*.
The parent reads/writes are unprotected in the baseline — the same kind
of racy site as CC's pointer jumping — but path compression keeps their
count low, so the race-free conversion costs little (geomean 0.93-0.97,
Tables IV-VII).

Performance level: Boruvka rounds.  Each round resolves the component
roots of both endpoints of every live edge (jump reads with compression
writes), lets every component pick its minimum cross edge (atomicMin on
the packed 64-bit best slot), hooks the component pairs, and flattens.

SIMT level: a per-edge kernel with find/CAS-hook and a 64-bit packed
atomicMin — including the baseline's racy 64-bit best *reads*, which
can tear (Section II.A's word-tearing discussion is about exactly this
data layout).
"""

from __future__ import annotations

import numpy as np

from repro.core.transform import AccessPlan, AccessSite, site_kind
from repro.core.variants import AlgorithmInfo, Variant, register_algorithm
from repro.gpu.accesses import AccessKind, RMWOp
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor, ThreadCtx

ACCESS_PLAN = AccessPlan("mst", (
    # union-find parent reads while resolving roots; ECL-MST's shared
    # data structures are already volatile (Section VII: "graph
    # algorithms that already use volatile data structures do not incur
    # much slowdown"), and implicit path compression keeps the count low
    AccessSite("mst.parent.jump_read", AccessKind.VOLATILE),
    # implicit path-compression stores
    AccessSite("mst.parent.jump_write", AccessKind.VOLATILE, is_store=True),
    # reading a component's best-edge slot (64-bit, tears in baseline)
    AccessSite("mst.best.read", AccessKind.VOLATILE, elem_bytes=8),
    # resetting best slots between rounds
    AccessSite("mst.best.write", AccessKind.VOLATILE, elem_bytes=8,
               is_store=True),
    # the best-edge election is an atomicMin in the baseline already
    AccessSite("mst.best.elect", AccessKind.ATOMIC, elem_bytes=8,
               is_rmw=True),
    # hooking components is an atomicCAS in the baseline already
    AccessSite("mst.parent.hook", AccessKind.ATOMIC, is_rmw=True),
))

_NO_EDGE = (1 << 62)  # packed "no best edge" sentinel


def _pack(weight: int, edge: int) -> int:
    """Pack (weight, edge id) so numeric min order is (weight, edge)."""
    return (int(weight) << 32) | int(edge)


def _unpack_edge(packed: int) -> int:
    return int(packed) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# Performance level
# ----------------------------------------------------------------------

def run_perf(graph, recorder, seed: int = 0,
             path_compression: bool = True) -> dict:
    """Boruvka MST with recorded accesses.

    Both variants compute identical forests; only access pricing
    differs.  Requires ``graph.weights``.

    ``path_compression=False`` disables the implicit compression for
    ablation: the finds then re-walk full chains every round, and the
    racy-access count — and with it the race-free slowdown — grows
    toward CC's regime (Section VI.A's argument, inverted).
    """
    if not graph.has_weights:
        graph = graph.with_random_weights(seed=seed)
    n = graph.num_vertices
    # canonical undirected edges (one direction)
    src_all = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    dst_all = graph.col_indices.astype(np.int64)
    canon = src_all < dst_all
    eu = src_all[canon]
    ev = dst_all[canon]
    ew = graph.weights[canon]
    edge_csr_index = np.flatnonzero(canon)
    m = eu.shape[0]

    parent = np.arange(n, dtype=np.int64)
    in_mst = np.zeros(graph.num_edges, dtype=bool)
    alive = np.ones(m, dtype=bool)

    recorder.touch("parent", 4 * n)
    recorder.touch("best", 8 * n)
    recorder.touch("edges", 16 * m)
    recorder.store("mst.parent.jump_write", count=n)  # init
    recorder.round()

    packed = (ew.astype(np.int64) << 32) | np.arange(m, dtype=np.int64)

    while True:
        live = np.flatnonzero(alive)
        if live.size == 0:
            break
        recorder.round()
        recorder.structure(2 * live.size)

        # resolve endpoint roots; implicit path compression keeps these
        # walks short, which is why MST's racy-access count stays low
        from repro.algorithms.common import recorded_roots

        write_site = "mst.parent.jump_write" if path_compression else None
        ru = recorded_roots(parent, eu[live], recorder,
                            "mst.parent.jump_read", write_site)
        rv = recorded_roots(parent, ev[live], recorder,
                            "mst.parent.jump_read", write_site)
        if path_compression:
            # apply the implicit compression (stores counted above)
            parent[eu[live]] = ru
            parent[ev[live]] = rv

        cross = ru != rv
        alive[live[~cross]] = False  # intra-component edges die
        if not np.any(cross):
            break
        le = live[cross]
        cu, cv = ru[cross], rv[cross]

        # best-edge election per component (atomicMin on packed slots);
        # only live representatives' slots are reset
        best = np.full(n, _NO_EDGE, dtype=np.int64)
        roots = np.unique(np.concatenate([cu, cv]))
        recorder.store("mst.best.write", count=int(roots.size))
        np.minimum.at(best, cu, packed[le])
        np.minimum.at(best, cv, packed[le])
        recorder.rmw("mst.best.elect", indices=np.concatenate([cu, cv]))

        # each component reads its winning edge and hooks along it
        recorder.load("mst.best.read", indices=roots)
        winners = best[roots]
        has_edge = winners != _NO_EDGE
        win_edges = (winners[has_edge] & 0xFFFFFFFF).astype(np.int64)
        win_edges = np.unique(win_edges)  # both endpoints may pick it

        in_mst[edge_csr_index[win_edges]] = True
        # hook: smaller root becomes the representative (roots resolved
        # this round, looked up per winning edge)
        root_u = np.full(m, -1, dtype=np.int64)
        root_v = np.full(m, -1, dtype=np.int64)
        root_u[le] = cu
        root_v[le] = cv
        hu = root_u[win_edges]
        hv = root_v[win_edges]
        lo = np.minimum(hu, hv)
        hi = np.maximum(hu, hv)
        np.minimum.at(parent, hi, lo)
        recorder.rmw("mst.parent.hook", indices=hi)
        # break 2-cycles introduced by mutual picks
        cyc = parent[parent[np.arange(n)]] == np.arange(n)
        two_cycle = cyc & (parent != np.arange(n))
        fix = np.flatnonzero(two_cycle)
        keep = fix[parent[fix] > fix]
        parent[keep] = keep

        # no global flatten: ECL-MST relies on the implicit compression
        # the next round's finds perform (Section VI.A)

    total = int(graph.weights[in_mst].sum())
    return {"in_mst": in_mst, "weight": total, "parent": parent}


# ----------------------------------------------------------------------
# SIMT level
# ----------------------------------------------------------------------

def _find(ctx: ThreadCtx, parent, x: int, read_kind, write_kind):
    p = yield ctx.load(parent, x, read_kind,
                       site="mst.parent.jump_read")
    while p != x:
        gp = yield ctx.load(parent, p, read_kind,
                            site="mst.parent.jump_read")
        if gp == p:
            return p
        yield ctx.store(parent, x, gp, write_kind,  # compression
                        site="mst.parent.jump_write")
        x = p
        p = gp
    return x


def make_elect_kernel(variant: Variant):
    """Round phase 1: every live edge bids on both components' slots."""
    jump_read = site_kind(ACCESS_PLAN, variant, "mst.parent.jump_read")
    jump_write = site_kind(ACCESS_PLAN, variant, "mst.parent.jump_write")

    def elect_kernel(ctx: ThreadCtx, eu, ev, ew, parent, best, alive):
        e = ctx.tid
        if e >= eu.length:
            return
        live = yield ctx.load(alive, e)
        if not live:
            return
        u = yield ctx.load(eu, e)
        v = yield ctx.load(ev, e)
        ru = yield from _find(ctx, parent, u, jump_read, jump_write)
        rv = yield from _find(ctx, parent, v, jump_read, jump_write)
        if ru == rv:
            yield ctx.store(alive, e, 0)
            return
        w = yield ctx.load(ew, e)
        key = _pack(w, e)
        yield ctx.atomic_rmw(best, ru, RMWOp.MIN, key,
                             site="mst.best.elect")
        yield ctx.atomic_rmw(best, rv, RMWOp.MIN, key,
                             site="mst.best.elect")

    return elect_kernel


def make_hook_kernel(variant: Variant):
    """Round phase 2: each component hooks along its winning edge."""
    jump_read = site_kind(ACCESS_PLAN, variant, "mst.parent.jump_read")
    jump_write = site_kind(ACCESS_PLAN, variant, "mst.parent.jump_write")
    best_read = site_kind(ACCESS_PLAN, variant, "mst.best.read")

    def hook_kernel(ctx: ThreadCtx, eu, ev, parent, best, in_mst, changed):
        c = ctx.tid
        if c >= best.length:
            return
        root = yield from _find(ctx, parent, c, jump_read, jump_write)
        if root != c:
            return  # not a representative
        packed = yield ctx.load(best, c, best_read,
                                site="mst.best.read")
        if packed >= _NO_EDGE:
            return
        e = _unpack_edge(packed)
        u = yield ctx.load(eu, e)
        v = yield ctx.load(ev, e)
        ru = yield from _find(ctx, parent, u, jump_read, jump_write)
        rv = yield from _find(ctx, parent, v, jump_read, jump_write)
        if ru == rv:
            return
        lo, hi = (ru, rv) if ru < rv else (rv, ru)
        old = yield ctx.atomic_cas(parent, hi, hi, lo,
                                   site="mst.parent.hook")
        if old == hi:
            yield ctx.store(in_mst, e, 1)
            yield ctx.store(changed, 0, 1, AccessKind.ATOMIC)

    return hook_kernel


def run_simt(graph, variant: Variant, seed: int = 0, scheduler=None,
             executor: SimtExecutor | None = None):
    """Run MST on the SIMT interpreter (small graphs only).

    Returns a boolean mask over the *canonical* (u < v) edge list plus
    that edge list, and the executor.
    """
    from repro.gpu.accesses import DType

    if not graph.has_weights:
        graph = graph.with_random_weights(seed=seed)
    mem = executor.memory if executor else GlobalMemory()
    ex = executor or SimtExecutor(mem, scheduler=scheduler)
    n = graph.num_vertices
    src_all = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    dst_all = graph.col_indices.astype(np.int64)
    canon = src_all < dst_all
    eu_np, ev_np = src_all[canon], dst_all[canon]
    ew_np = graph.weights[canon]
    csr_idx = np.flatnonzero(canon)
    m = max(1, eu_np.shape[0])

    eu = mem.alloc("mst_eu", m, DType.I32)
    ev = mem.alloc("mst_ev", m, DType.I32)
    ew = mem.alloc("mst_ew", m, DType.I64)
    parent = mem.alloc("mst_parent", n, DType.I32)
    best = mem.alloc("mst_best", n, DType.I64)
    alive = mem.alloc("mst_alive", m, DType.I32)
    in_mst = mem.alloc("mst_inmst", m, DType.I32)
    changed = mem.alloc("mst_changed", 1, DType.I32)
    if eu_np.shape[0]:
        mem.upload(eu, eu_np)
        mem.upload(ev, ev_np)
        mem.upload(ew, ew_np)
        mem.upload(alive, np.ones(m, dtype=np.int64))
    mem.upload(parent, np.arange(n))

    elect = make_elect_kernel(variant)
    hook = make_hook_kernel(variant)
    while True:
        mem.fill(best, _NO_EDGE)
        mem.element_write(changed, 0, 0)
        if eu_np.shape[0]:
            ex.launch(elect, m, eu, ev, ew, parent, best, alive)
        ex.launch(hook, n, eu, ev, parent, best, in_mst, changed)
        if mem.element_read(changed, 0) == 0:
            break
    mask = mem.download(in_mst).astype(bool)[:eu_np.shape[0]]
    full_mask = np.zeros(graph.num_edges, dtype=bool)
    full_mask[csr_idx[np.flatnonzero(mask)]] = True
    for name in ("mst_eu", "mst_ev", "mst_ew", "mst_parent", "mst_best",
                 "mst_alive", "mst_inmst", "mst_changed"):
        mem.free(name)
    return full_mask, ex


register_algorithm(AlgorithmInfo(
    key="mst",
    full_name="minimum spanning tree (ECL-MST)",
    directed=False,
    needs_weights=True,
    has_races=True,
    perf_runner=run_perf,
    module="repro.algorithms.mst",
))
