"""Result validation against independent reference implementations.

The paper validates its race-free codes for correctness; we validate
*both* variants of every run against textbook references (networkx /
scipy / pure-python Tarjan and Kruskal).  Each checker raises
:class:`~repro.errors.ValidationError` with a diagnostic on failure and
returns silently on success.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.graphs.csr import CSRGraph


def check_components(graph: CSRGraph, labels: np.ndarray) -> None:
    """CC: same-component vertices share a label, different don't."""
    if labels.shape[0] != graph.num_vertices:
        raise ValidationError("label array has wrong length")
    reference = _bfs_components(graph)
    # labels must induce exactly the reference partition
    seen: dict[int, int] = {}
    for v in range(graph.num_vertices):
        ref = int(reference[v])
        got = int(labels[v])
        if ref in seen:
            if seen[ref] != got:
                raise ValidationError(
                    f"vertices in one component got labels {seen[ref]} "
                    f"and {got} (vertex {v})"
                )
        else:
            seen[ref] = got
    if len(set(seen.values())) != len(seen):
        raise ValidationError("distinct components share a label")


def _bfs_components(graph: CSRGraph) -> np.ndarray:
    """Reference CC labelling by BFS over the (symmetric) graph."""
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    for start in range(n):
        if labels[start] != -1:
            continue
        labels[start] = start
        frontier = [start]
        while frontier:
            nxt = []
            for v in frontier:
                for u in graph.neighbors(v):
                    u = int(u)
                    if labels[u] == -1:
                        labels[u] = start
                        nxt.append(u)
            frontier = nxt
    return labels


def check_coloring(graph: CSRGraph, colors: np.ndarray) -> None:
    """GC: every vertex colored, no adjacent pair shares a color."""
    if colors.shape[0] != graph.num_vertices:
        raise ValidationError("color array has wrong length")
    if np.any(colors < 0):
        bad = int(np.argmax(colors < 0))
        raise ValidationError(f"vertex {bad} left uncolored")
    src, dst = graph.edge_array()
    clash = colors[src] == colors[dst]
    if np.any(clash):
        i = int(np.argmax(clash))
        raise ValidationError(
            f"adjacent vertices {src[i]} and {dst[i]} share color "
            f"{colors[src[i]]}"
        )


def check_mis(graph: CSRGraph, in_set: np.ndarray) -> None:
    """MIS: independence (no two set members adjacent) and maximality
    (every non-member has a member neighbor)."""
    if in_set.shape[0] != graph.num_vertices:
        raise ValidationError("MIS array has wrong length")
    members = in_set.astype(bool)
    src, dst = graph.edge_array()
    both = members[src] & members[dst]
    if np.any(both):
        i = int(np.argmax(both))
        raise ValidationError(
            f"adjacent vertices {src[i]} and {dst[i]} are both in the set"
        )
    # maximality: non-member with no member neighbor could be added
    has_member_neighbor = np.zeros(graph.num_vertices, dtype=bool)
    np.logical_or.at(has_member_neighbor, src, members[dst])
    addable = ~members & ~has_member_neighbor
    # isolated vertices must be members
    if np.any(addable):
        v = int(np.argmax(addable))
        raise ValidationError(f"vertex {v} could be added to the set")


def check_mst(graph: CSRGraph, edge_mask: np.ndarray) -> None:
    """MST: selected edges form a spanning forest of minimum weight.

    ``edge_mask`` marks selected entries of the CSR edge list (each
    undirected edge may be marked in either direction).  Weight is
    compared against a reference Kruskal run.
    """
    if not graph.has_weights:
        raise ValidationError("MST verification requires edge weights")
    src, dst = graph.edge_array()
    sel = np.flatnonzero(edge_mask)
    n = graph.num_vertices

    # forest check + component count via union-find
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    picked_weight = 0
    for e in sel.tolist():
        u, v = int(src[e]), int(dst[e])
        ru, rv = find(u), find(v)
        if ru == rv:
            raise ValidationError(
                f"selected edge ({u}, {v}) creates a cycle"
            )
        parent[ru] = rv
        picked_weight += int(graph.weights[e])

    components = len({find(v) for v in range(n)})
    ref_weight, ref_components = _kruskal(graph)
    if components != ref_components:
        raise ValidationError(
            f"selection spans {components} components, expected "
            f"{ref_components}"
        )
    if picked_weight != ref_weight:
        raise ValidationError(
            f"selected weight {picked_weight} != minimum {ref_weight}"
        )


def _kruskal(graph: CSRGraph) -> tuple[int, int]:
    """Reference MST weight and component count (Kruskal)."""
    src, dst = graph.edge_array()
    w = graph.weights
    keep = src < dst  # one direction per undirected edge
    order = np.argsort(w[keep], kind="stable")
    us = src[keep][order]
    vs = dst[keep][order]
    ws = w[keep][order]
    n = graph.num_vertices
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    total = 0
    for u, v, wt in zip(us.tolist(), vs.tolist(), ws.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            total += wt
    components = len({find(v) for v in range(n)})
    return total, components


def check_scc(graph: CSRGraph, labels: np.ndarray) -> None:
    """SCC: labels must induce exactly Tarjan's partition."""
    if labels.shape[0] != graph.num_vertices:
        raise ValidationError("SCC label array has wrong length")
    reference = tarjan_scc(graph)
    seen: dict[int, int] = {}
    used: dict[int, int] = {}
    for v in range(graph.num_vertices):
        ref = int(reference[v])
        got = int(labels[v])
        if ref in seen:
            if seen[ref] != got:
                raise ValidationError(
                    f"SCC split: vertices with reference {ref} got labels "
                    f"{seen[ref]} and {got} (vertex {v})"
                )
        else:
            if got in used:
                raise ValidationError(
                    f"SCC merge: label {got} spans reference components "
                    f"{used[got]} and {ref}"
                )
            seen[ref] = got
            used[got] = ref


def tarjan_scc(graph: CSRGraph) -> np.ndarray:
    """Iterative Tarjan SCC (reference implementation)."""
    n = graph.num_vertices
    index = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    comp = np.full(n, -1, dtype=np.int64)
    stack: list[int] = []
    counter = 0
    n_comps = 0

    for root in range(n):
        if index[root] != -1:
            continue
        work = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            neighbors = graph.neighbors(v)
            advanced = False
            while pi < len(neighbors):
                u = int(neighbors[pi])
                pi += 1
                if index[u] == -1:
                    work[-1] = (v, pi)
                    work.append((u, 0))
                    advanced = True
                    break
                if on_stack[u]:
                    low[v] = min(low[v], index[u])
            if advanced:
                continue
            work.pop()
            if low[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp[w] = n_comps
                    if w == v:
                        break
                n_comps += 1
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
    return comp


def check_apsp(graph: CSRGraph, dist: np.ndarray) -> None:
    """APSP: distance matrix must match scipy's shortest paths."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import shortest_path

    from repro.algorithms.apsp import INF as _apsp_inf

    if not graph.has_weights:
        raise ValidationError("APSP verification requires edge weights")
    n = graph.num_vertices
    src, dst = graph.edge_array()
    mat = csr_matrix(
        (graph.weights.astype(float), (src, dst)), shape=(n, n)
    )
    ref = shortest_path(mat, method="D", directed=graph.directed)
    ours = dist.astype(float)
    ours = np.where(np.isfinite(ours) & (ours < _apsp_inf), ours, np.inf)
    if not np.allclose(np.where(np.isinf(ref), -1.0, ref),
                       np.where(np.isinf(ours), -1.0, ours)):
        bad = np.argwhere(
            ~np.isclose(np.where(np.isinf(ref), -1.0, ref),
                        np.where(np.isinf(ours), -1.0, ours))
        )[0]
        i, j = int(bad[0]), int(bad[1])
        raise ValidationError(
            f"APSP mismatch at ({i}, {j}): ours={ours[i, j]}, "
            f"reference={ref[i, j]}"
        )
