"""ECL-MIS: maximal independent set via Luby's algorithm.

The baseline ECL-MIS (Section II.B.4) is *asynchronous*: persistent
threads repeatedly poll their neighbors' combined status/priority bytes
and eventually decide each vertex IN or OUT.  Because those polls are
not atomic, the compiler is free to "optimize" some of them — keeping
polled values in registers and thereby delaying when one thread's
decision becomes visible to the others (Section VI.A).  The race-free
conversion reads each status through a relaxed atomic ``int`` load with
typecasting and masking (Fig. 3b) and writes through atomic bitwise
operations (Fig. 4b); every poll then observes current memory, values
propagate faster, and the race-free code is 5-11 % *faster* — likely
making it the fastest CUDA MIS implementation (Section I).

Performance level: Luby rounds where the baseline's neighbor-status
view is served by a :class:`~repro.perf.visibility.DelayedView`
(staleness = the device's register-caching constant, applied to the
fraction of polls the compiler optimizes), while the race-free variant
always sees current statuses.  Stale views delay decisions, so the
baseline needs more rounds and more polls.

SIMT level: the asynchronous polling kernel itself, with the
status-byte encoding of the original (IN/OUT bits OR-ed into a shared
``char`` array).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import edge_sources, segment_max
from repro.core.transform import AccessPlan, AccessSite, site_kind
from repro.core.variants import AlgorithmInfo, Variant, register_algorithm
from repro.gpu.accesses import AccessKind
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor, ThreadCtx
from repro.perf.visibility import DelayedView

ACCESS_PLAN = AccessPlan("mis", (
    # neighbor status polls: declared volatile in the original, but the
    # compiler still register-allocates a fraction of them (the paper's
    # explanation for the race-free speedup) — see BASELINE_STALE_FRACTION
    AccessSite("mis.nstat.poll", AccessKind.VOLATILE, elem_bytes=1),
    # status writes (IN / OUT decisions)
    AccessSite("mis.nstat.write", AccessKind.VOLATILE, elem_bytes=1,
               is_store=True),
    # static priorities (read-only after init)
    AccessSite("mis.prio.read", AccessKind.PLAIN, shared=False),
))

#: Fraction of baseline polls whose value the compiler keeps in a
#: register (stale).  Calibration constant for Section VI.A's visibility
#: mechanism; the race-free variant always has fraction 0.
BASELINE_STALE_FRACTION = 0.2

UNDECIDED = 0
IN = 1
OUT = 2


def make_priorities(graph, seed: int) -> np.ndarray:
    """ECL-MIS priorities: random, inversely proportional to degree
    (low-degree vertices win often, which enlarges the set), packed into
    one comparable integer per vertex."""
    rng = np.random.default_rng(seed)
    tiebreak = rng.permutation(graph.num_vertices).astype(np.int64)
    deg = graph.degrees().astype(np.int64)
    inv = (deg.max() + 1 - deg)
    return inv * graph.num_vertices + tiebreak


# ----------------------------------------------------------------------
# Performance level
# ----------------------------------------------------------------------

def run_perf(graph, recorder, seed: int = 0,
             stale_fraction: float | None = None) -> dict:
    """Luby MIS with a delayed-visibility baseline.

    ``stale_fraction`` overrides :data:`BASELINE_STALE_FRACTION` for
    ablation studies (0.0 disables the visibility mechanism entirely,
    at which point the race-free variant loses its advantage).
    """
    n = graph.num_vertices
    m = graph.num_edges
    src = edge_sources(graph)
    dst = graph.col_indices.astype(np.int64)
    prio = make_priorities(graph, seed)
    status = np.full(n, UNDECIDED, dtype=np.int8)

    if stale_fraction is None:
        stale_fraction = BASELINE_STALE_FRACTION
    poll_kind = site_kind(recorder.plan, recorder.variant, "mis.nstat.poll")
    if poll_kind is AccessKind.ATOMIC or stale_fraction == 0.0:
        # atomic polls are immediately visible: the staleness constant
        # is never consumed, so this trace serves every device.  Keyed
        # on the *effective* site kind, not the variant, so candidate
        # repair plans that promote the poll site price correctly.
        view = DelayedView(status, delay=0)
    else:
        view = DelayedView(status, delay=recorder.visibility_delay(),
                           stale_fraction=stale_fraction,
                           seed=seed)

    recorder.touch("nstat", n)  # one byte per vertex
    recorder.touch("csr", 4 * m + 8 * (n + 1))
    recorder.store("mis.nstat.write", count=n)  # init kernel
    recorder.round()

    while True:
        undecided = status == UNDECIDED
        if not np.any(undecided):
            break
        recorder.round()
        seen = view.read()
        active = undecided[src]
        n_polls = int(np.count_nonzero(active))
        recorder.structure(n_polls)
        recorder.load("mis.nstat.poll", count=n_polls)
        recorder.load("mis.prio.read", count=n_polls)
        recorder.compute(2 * n_polls)

        nbr_status = seen[dst]
        # OUT if any neighbor is (observed to be) IN
        in_nbr = segment_max((nbr_status == IN).astype(np.int64),
                             graph.row_offsets, 0).astype(bool)
        # IN if highest priority among (observed) undecided neighbors
        nbr_prio = np.where(nbr_status == UNDECIDED, prio[dst], -1)
        max_undecided_nbr = segment_max(nbr_prio, graph.row_offsets, -1)
        wins = undecided & ~in_nbr & (prio > max_undecided_nbr)
        outs = undecided & in_nbr

        status[wins] = IN
        status[outs] = OUT
        n_changed = int(np.count_nonzero(wins) + np.count_nonzero(outs))
        recorder.store("mis.nstat.write", count=n_changed)
        view.commit()

    return {"in_set": (status == IN).astype(np.int8)}


# ----------------------------------------------------------------------
# SIMT level
# ----------------------------------------------------------------------

def make_mis_kernel(variant: Variant):
    """The asynchronous per-vertex MIS kernel."""
    from repro.gpu.atomics import (
        atomic_or_char,
        atomic_read_char,
    )

    # kind-driven (not variant-driven) so repair overrides engage the
    # hand-written atomic paths: promoting a byte site to ATOMIC *means*
    # the Fig. 3b/4b word-widened helpers
    poll_kind = site_kind(ACCESS_PLAN, variant, "mis.nstat.poll")
    write_kind = site_kind(ACCESS_PLAN, variant, "mis.nstat.write")

    def read_stat(ctx, nstat, v):
        if poll_kind is AccessKind.ATOMIC:
            value = yield from atomic_read_char(ctx, nstat, v,
                                                site="mis.nstat.poll")
        else:
            value = yield ctx.load(nstat, v, poll_kind,
                                   site="mis.nstat.poll")
        return value

    def write_stat(ctx, nstat, v, bits):
        if write_kind is AccessKind.ATOMIC:
            yield from atomic_or_char(ctx, nstat, v, bits,
                                      site="mis.nstat.write")
        else:
            # the read half of the composed RMW is a poll-site access,
            # so it follows the poll site's effective kind
            old = yield from read_stat(ctx, nstat, v)
            yield ctx.store(nstat, v, old | bits, write_kind,
                            site="mis.nstat.write")

    def mis_kernel(ctx: ThreadCtx, offsets, indices, prio, nstat):
        v = ctx.tid
        if v >= nstat.length:
            return
        beg = yield ctx.load(offsets, v)
        end = yield ctx.load(offsets, v + 1)
        my_prio = yield ctx.load(prio, v, site="mis.prio.read")
        while True:
            mine = yield from read_stat(ctx, nstat, v)
            if mine != UNDECIDED:
                return
            best = True
            any_in = False
            for e in range(beg, end):
                u = yield ctx.load(indices, e)
                su = yield from read_stat(ctx, nstat, u)
                if su == IN:
                    any_in = True
                    break
                if su == UNDECIDED:
                    up = yield ctx.load(prio, u, site="mis.prio.read")
                    if up > my_prio:
                        best = False
            if any_in:
                yield from write_stat(ctx, nstat, v, OUT)
                return
            if best:
                yield from write_stat(ctx, nstat, v, IN)
                for e in range(beg, end):
                    u = yield ctx.load(indices, e)
                    yield from write_stat(ctx, nstat, u, OUT)
                return
            # otherwise: keep polling (asynchronous wait)

    return mis_kernel


def run_simt(graph, variant: Variant, seed: int = 0, scheduler=None,
             executor: SimtExecutor | None = None):
    """Run MIS on the SIMT interpreter (small graphs only)."""
    from repro.gpu.accesses import DType

    mem = executor.memory if executor else GlobalMemory()
    ex = executor or SimtExecutor(mem, scheduler=scheduler)
    n = graph.num_vertices
    offsets = mem.alloc("mis_offsets", n + 1, DType.I64)
    indices = mem.alloc("mis_indices", max(1, graph.num_edges), DType.I32)
    prio = mem.alloc("mis_prio", n, DType.I64)
    nstat = mem.alloc("mis_nstat", n, DType.U8)
    mem.upload(offsets, graph.row_offsets)
    if graph.num_edges:
        mem.upload(indices, graph.col_indices)
    else:
        mem.upload(indices, np.zeros(1, dtype=np.int64))
    mem.upload(prio, make_priorities(graph, seed))

    ex.launch(make_mis_kernel(variant), n, offsets, indices, prio, nstat)
    statuses = mem.download(nstat)
    for name in ("mis_offsets", "mis_indices", "mis_prio", "mis_nstat"):
        mem.free(name)
    return (statuses == IN).astype(np.int8), ex


# ----------------------------------------------------------------------
# Packed single-byte mode (the paper's footprint optimization)
# ----------------------------------------------------------------------

#: marker bytes of the packed encoding; any smaller byte is an
#: undecided vertex's quantized priority
PACKED_IN = 0xFE
PACKED_OUT = 0xFF
_PACKED_PRIO_MAX = 0xFD


def make_packed_priorities(graph, seed: int) -> np.ndarray:
    """Quantize the inverse-degree priorities into the byte range the
    packed encoding can hold ("combines the status and the priority of
    a vertex in a single byte", Section II.B.4).  Ties are broken by
    vertex id at decision time."""
    prio = make_priorities(graph, seed)
    order = np.argsort(prio)
    ranks = np.empty_like(prio)
    ranks[order] = np.arange(prio.shape[0])
    scaled = ranks * _PACKED_PRIO_MAX // max(1, prio.shape[0] - 1)
    return scaled.astype(np.int64)


def make_mis_kernel_packed(variant: Variant):
    """The asynchronous MIS kernel over the packed byte array.

    A single one-byte poll yields *both* a neighbor's status and its
    priority — this is why ECL-MIS packs them.  Race-free accesses go
    through the Fig. 3b typecast read and a CAS-loop byte store.
    """
    from repro.gpu.atomics import atomic_read_char, atomic_write_char

    poll_kind = site_kind(ACCESS_PLAN, variant, "mis.nstat.poll")
    write_kind = site_kind(ACCESS_PLAN, variant, "mis.nstat.write")

    def read_byte(ctx, nstat, v):
        if poll_kind is AccessKind.ATOMIC:
            value = yield from atomic_read_char(ctx, nstat, v,
                                                site="mis.nstat.poll")
        else:
            value = yield ctx.load(nstat, v, poll_kind,
                                   site="mis.nstat.poll")
        return value

    def write_byte(ctx, nstat, v, value):
        if write_kind is AccessKind.ATOMIC:
            yield from atomic_write_char(ctx, nstat, v, value,
                                         site="mis.nstat.write")
        else:
            yield ctx.store(nstat, v, value, write_kind,
                            site="mis.nstat.write")

    def mis_kernel(ctx: ThreadCtx, offsets, indices, nstat):
        v = ctx.tid
        if v >= nstat.length:
            return
        beg = yield ctx.load(offsets, v)
        end = yield ctx.load(offsets, v + 1)
        my_prio = yield from read_byte(ctx, nstat, v)  # own byte at start
        while True:
            mine = yield from read_byte(ctx, nstat, v)
            if mine >= PACKED_IN:
                return  # decided by a neighbor
            best = True
            any_in = False
            for e in range(beg, end):
                u = yield ctx.load(indices, e)
                byte = yield from read_byte(ctx, nstat, u)
                if byte == PACKED_IN:
                    any_in = True
                    break
                if byte == PACKED_OUT:
                    continue
                # undecided: the byte IS the neighbor's priority
                if (byte, u) > (my_prio, v):
                    best = False
            if any_in:
                yield from write_byte(ctx, nstat, v, PACKED_OUT)
                return
            if best:
                yield from write_byte(ctx, nstat, v, PACKED_IN)
                for e in range(beg, end):
                    u = yield ctx.load(indices, e)
                    yield from write_byte(ctx, nstat, u, PACKED_OUT)
                return

    return mis_kernel


def run_simt_packed(graph, variant: Variant, seed: int = 0, scheduler=None,
                    executor: SimtExecutor | None = None):
    """Run the packed-byte MIS on the SIMT interpreter."""
    from repro.gpu.accesses import DType

    mem = executor.memory if executor else GlobalMemory()
    ex = executor or SimtExecutor(mem, scheduler=scheduler)
    n = graph.num_vertices
    offsets = mem.alloc("misp_offsets", n + 1, DType.I64)
    indices = mem.alloc("misp_indices", max(1, graph.num_edges), DType.I32)
    nstat = mem.alloc("misp_nstat", n, DType.U8)
    mem.upload(offsets, graph.row_offsets)
    if graph.num_edges:
        mem.upload(indices, graph.col_indices)
    else:
        mem.upload(indices, np.zeros(1, dtype=np.int64))
    mem.upload(nstat, make_packed_priorities(graph, seed))

    ex.launch(make_mis_kernel_packed(variant), n, offsets, indices, nstat)
    bytes_out = mem.download(nstat)
    for name in ("misp_offsets", "misp_indices", "misp_nstat"):
        mem.free(name)
    return (bytes_out == PACKED_IN).astype(np.int8), ex


register_algorithm(AlgorithmInfo(
    key="mis",
    full_name="maximal independent set (ECL-MIS)",
    directed=False,
    needs_weights=False,
    has_races=True,
    perf_runner=run_perf,
    module="repro.algorithms.mis",
))
