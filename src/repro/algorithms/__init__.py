"""The six studied graph-analytics codes (Section II.B).

Each module implements one ECL code at both execution levels:

* a *performance-level* runner (vectorized rounds, access-recorded)
  registered with :mod:`repro.core.variants`;
* *SIMT-level* kernels (generator functions) for race detection and
  correctness-under-schedules testing on small inputs;
* the :class:`~repro.core.transform.AccessPlan` naming every shared
  access site with its baseline access kind.

APSP is the regular outlier: it has no data races (Section IV.A), so it
only exists in one version.
"""

from repro.algorithms import apsp, cc, gc, mis, mst, scc, verify

__all__ = ["apsp", "cc", "gc", "mis", "mst", "scc", "verify"]
