"""ECL-GC: graph coloring via Jones-Plassmann with largest-degree-first.

The baseline ECL-GC (Section II.B.3) keeps each vertex's chosen color
and possible-color set in shared ``int`` arrays that neighbors read and
write with unprotected — but *volatile* — accesses.  Because volatile
accesses already bypass L1 on the modelled architectures, converting
them to relaxed atomics costs almost nothing: the paper measures GC
geomean speedups of 0.96-1.00 (Tables IV-VII).

Performance level: synchronous Jones-Plassmann rounds.  A vertex is
*ready* when no uncolored neighbor has higher (degree, tiebreak)
priority; ready vertices take the smallest color absent from their
neighborhood.  The shortcut optimizations change *when* vertices become
ready but not the access-kind profile this level prices, so they are
approximated by the plain readiness rule (see DESIGN.md Section 6).

SIMT level: a per-vertex round kernel over the colors *and* the
possible-color bitsets, including the paper's shortcut 1 — the
cross-vertex posscol reads are exactly the racy accesses Section IV.A
reports for GC.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import edge_sources
from repro.core.transform import AccessPlan, AccessSite, site_kind
from repro.core.variants import AlgorithmInfo, Variant, register_algorithm
from repro.gpu.accesses import AccessKind
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor, ThreadCtx

ACCESS_PLAN = AccessPlan("gc", (
    # neighbor color polling (volatile in the baseline)
    AccessSite("gc.color.read", AccessKind.VOLATILE),
    # publishing the chosen color
    AccessSite("gc.color.write", AccessKind.VOLATILE, is_store=True),
    # the possible-color bitsets neighbors read and the owner rewrites
    # (Section IV.A: "records the possible colors ... in shared int
    # arrays ... using unprotected accesses")
    AccessSite("gc.posscol.read", AccessKind.VOLATILE),
    AccessSite("gc.posscol.write", AccessKind.VOLATILE, is_store=True),
    # vertex priorities: written once before coloring, read-only after
    AccessSite("gc.prio.read", AccessKind.PLAIN, shared=False),
))

UNCOLORED = -1


def make_priorities(graph, seed: int) -> np.ndarray:
    """Largest-degree-first priorities with random tie-breaking, packed
    into one comparable integer per vertex."""
    rng = np.random.default_rng(seed)
    tiebreak = rng.permutation(graph.num_vertices).astype(np.int64)
    return graph.degrees().astype(np.int64) * graph.num_vertices + tiebreak


# ----------------------------------------------------------------------
# Performance level
# ----------------------------------------------------------------------

def run_perf(graph, recorder, seed: int = 0) -> dict:
    """Jones-Plassmann coloring with recorded accesses."""
    n = graph.num_vertices
    m = graph.num_edges
    src = edge_sources(graph)
    dst = graph.col_indices.astype(np.int64)
    prio = make_priorities(graph, seed)
    color = np.full(n, UNCOLORED, dtype=np.int64)

    recorder.touch("color", 4 * n)
    recorder.touch("posscol", 4 * n)
    recorder.touch("csr", 4 * m + 8 * (n + 1))
    recorder.store("gc.color.write", count=n)  # init kernel
    recorder.round()

    uncolored = np.ones(n, dtype=bool)
    while np.any(uncolored):
        recorder.round()
        active_src = uncolored[src]
        n_polls = int(np.count_nonzero(active_src))
        n_active = int(np.count_nonzero(uncolored))
        recorder.structure(n_polls)
        # each active vertex polls its neighbors' colors and priorities
        # and maintains its possible-color set
        recorder.load("gc.color.read", count=n_polls)
        recorder.load("gc.prio.read", count=n_polls)
        recorder.load("gc.posscol.read", count=n_active)
        recorder.store("gc.posscol.write", count=n_active)
        recorder.compute(2 * n_polls)

        # blocked: an uncolored higher-priority neighbor exists
        blocking = active_src & uncolored[dst] & (prio[dst] > prio[src])
        blocked = np.zeros(n, dtype=bool)
        np.logical_or.at(blocked, src[blocking], True)
        ready = uncolored & ~blocked
        ready_vs = np.flatnonzero(ready)

        for v in ready_vs.tolist():
            beg, end = graph.row_offsets[v], graph.row_offsets[v + 1]
            neigh_colors = color[dst[beg:end]]
            used = np.unique(neigh_colors[neigh_colors >= 0])
            c = 0
            for u in used.tolist():
                if u == c:
                    c += 1
                elif u > c:
                    break
            color[v] = c
        recorder.store("gc.color.write", indices=ready_vs)
        uncolored[ready_vs] = False
    return {"colors": color}


# ----------------------------------------------------------------------
# SIMT level
# ----------------------------------------------------------------------

def _min_bit(mask: int) -> int:
    """Index of the lowest set bit (the smallest possible color)."""
    return (mask & -mask).bit_length() - 1


def make_gc_kernel(variant: Variant, words: int = 1):
    """One ECL-GC round over colors and possible-color bitsets.

    Mirrors the original's data layout: each vertex owns a bitset of
    still-possible colors (``posscol``) that it rewrites after scanning
    its neighbors, and the paper's *shortcut 1*: a vertex may color
    early — even below higher-priority uncolored neighbors — when its
    candidate color is provably unavailable to them (their possible
    sets only ever shrink upward).

    ``words`` is the per-vertex bitset width in 32-bit words: vertex
    ``v``'s possible set lives at ``posscol[v*words : (v+1)*words]``,
    little-endian.  With ``words == 1`` (every graph of max degree
    ≤ 30) the layout, access sequence, and stored values are identical
    to the historical single-word kernel.
    """
    color_read = site_kind(ACCESS_PLAN, variant, "gc.color.read")
    color_write = site_kind(ACCESS_PLAN, variant, "gc.color.write")
    poss_read = site_kind(ACCESS_PLAN, variant, "gc.posscol.read")
    poss_write = site_kind(ACCESS_PLAN, variant, "gc.posscol.write")

    def gc_kernel(ctx: ThreadCtx, offsets, indices, prio, color, posscol,
                  changed):
        v = ctx.tid
        if v >= color.length:
            return
        mine = yield ctx.load(color, v, color_read, site="gc.color.read")
        if mine != UNCOLORED:
            return
        beg = yield ctx.load(offsets, v)
        end = yield ctx.load(offsets, v + 1)
        my_prio = yield ctx.load(prio, v, site="gc.prio.read")
        my_poss = 0
        for w in range(words):
            part = yield ctx.load(posscol, v * words + w, poss_read,
                                  site="gc.posscol.read")
            my_poss |= int(part) << (32 * w)
        blockers = []
        for e in range(beg, end):
            u = yield ctx.load(indices, e)
            uc = yield ctx.load(color, u, color_read, site="gc.color.read")
            if uc != UNCOLORED:
                my_poss &= ~(1 << uc)
            else:
                up = yield ctx.load(prio, u, site="gc.prio.read")
                if up > my_prio:
                    blockers.append(u)
        for w in range(words):
            yield ctx.store(posscol, v * words + w,
                            (my_poss >> (32 * w)) & 0xFFFFFFFF,
                            poss_write, site="gc.posscol.write")
        candidate = _min_bit(my_poss)
        if blockers:
            # shortcut 1: safe if every higher-priority uncolored
            # neighbor can only take colors above our candidate
            for u in blockers:
                u_poss = 0
                for w in range(words):
                    part = yield ctx.load(posscol, u * words + w,
                                          poss_read,
                                          site="gc.posscol.read")
                    u_poss |= int(part) << (32 * w)
                if _min_bit(u_poss) <= candidate:
                    return  # still blocked
        yield ctx.store(color, v, candidate, color_write,
                        site="gc.color.write")
        yield ctx.store(changed, 0, 1, AccessKind.ATOMIC)

    return gc_kernel


def posscol_words(max_deg: int) -> int:
    """32-bit words needed for a possible-color bitset: a vertex of
    degree ``d`` needs bits ``0..d`` (greedy never exceeds degree)."""
    return max(1, -(-(max_deg + 1) // 32))


def initial_posscol(degrees: np.ndarray, words: int) -> np.ndarray:
    """Per-vertex initial possible sets ``2^(deg+1) - 1``, split into
    ``words`` little-endian u32 words (flattened row-major)."""
    bits = degrees.astype(np.int64) + 1
    init = np.zeros((len(bits), words), dtype=np.uint32)
    for w in range(words):
        rem = np.clip(bits - 32 * w, 0, 32).astype(np.uint64)
        init[:, w] = (((np.uint64(1) << rem) - np.uint64(1))
                      & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    return init.reshape(-1)


def run_simt(graph, variant: Variant, seed: int = 0, scheduler=None,
             executor: SimtExecutor | None = None):
    """Run GC on the SIMT interpreter (small graphs only)."""
    from repro.gpu.accesses import DType

    mem = executor.memory if executor else GlobalMemory()
    ex = executor or SimtExecutor(mem, scheduler=scheduler)
    n = graph.num_vertices
    max_deg = int(graph.degrees().max()) if n else 0
    # multi-word possible-color bitsets lift the historical 32-bit cap
    # (max degree 30); one word keeps the historical layout bit for bit
    words = posscol_words(max_deg)
    offsets = mem.alloc("gc_offsets", n + 1, DType.I64)
    indices = mem.alloc("gc_indices", max(1, graph.num_edges), DType.I32)
    prio = mem.alloc("gc_prio", n, DType.I64)
    color = mem.alloc("gc_color", n, DType.I32)
    posscol = mem.alloc("gc_posscol", n * words, DType.U32)
    changed = mem.alloc("gc_changed", 1, DType.I32)
    mem.upload(offsets, graph.row_offsets)
    if graph.num_edges:
        mem.upload(indices, graph.col_indices)
    else:
        mem.upload(indices, np.zeros(1, dtype=np.int64))
    mem.upload(prio, make_priorities(graph, seed))
    mem.upload(color, np.full(n, UNCOLORED))
    if n:
        mem.upload(posscol, initial_posscol(graph.degrees(), words))

    kernel = make_gc_kernel(variant, words=words)
    while True:
        mem.element_write(changed, 0, 0)
        ex.launch(kernel, n, offsets, indices, prio, color, posscol,
                  changed)
        colors = mem.download(color)
        if mem.element_read(changed, 0) == 0 and np.all(colors != UNCOLORED):
            break
        if mem.element_read(changed, 0) == 0:
            break  # no progress and still uncolored: let caller detect
    colors = mem.download(color)
    for name in ("gc_offsets", "gc_indices", "gc_prio", "gc_color",
                 "gc_posscol", "gc_changed"):
        mem.free(name)
    return colors, ex


register_algorithm(AlgorithmInfo(
    key="gc",
    full_name="graph coloring (ECL-GC)",
    directed=False,
    needs_weights=False,
    has_races=True,
    perf_runner=run_perf,
    module="repro.algorithms.gc",
))
