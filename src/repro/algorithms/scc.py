"""ECL-SCC: strongly connected components via concurrent max-ID pivots.

The baseline ECL-SCC (Section II.B.6) stores, for every vertex, the
maximum vertex ID seen on its incoming and outgoing paths as an ``int2``
pair in shared memory, plus a global boolean that signals whether
another iteration is needed.  All accesses are unprotected.  The
race-free conversion changes the ``int2`` to a ``long long`` and
accesses each half through the 32-bit atomic helpers of Fig. 5 (tearing
*between* halves is acceptable; within a half it is not), and the
boolean becomes an ``int`` so it can be accessed atomically.

The algorithm: every vertex v computes ``fwd(v)`` = the maximum ID
reachable *from* v and ``bwd(v)`` = the maximum ID that can *reach* v,
by monotonic max propagation.  Vertices with ``fwd == bwd == p`` are
exactly the SCC of pivot p — all vertices act as pivots simultaneously.
Settled vertices retire and the propagation repeats on the remainder.
Mesh graphs need many propagation rounds (long diameters), which is why
SCC — like CC dominated by plain accesses converted to atomics — shows
large race-free slowdowns (geomean 0.50-0.81, Table VIII).

SIMT level: a per-vertex propagation kernel over the shared int2 array,
used for race detection (including the half-tearing subtleties).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import edge_sources, segment_max
from repro.core.transform import AccessPlan, AccessSite, site_kind
from repro.core.variants import AlgorithmInfo, Variant, register_algorithm
from repro.gpu.accesses import AccessKind
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor, ThreadCtx

ACCESS_PLAN = AccessPlan("scc", (
    # reading a neighbor's path-max pair (int2; unprotected in baseline)
    AccessSite("scc.pathmax.read", AccessKind.PLAIN, elem_bytes=8),
    # updating the own pair (unprotected in baseline)
    AccessSite("scc.pathmax.write", AccessKind.PLAIN, elem_bytes=8,
               is_store=True),
    # the global "go again" boolean
    AccessSite("scc.goagain.write", AccessKind.PLAIN, is_store=True),
    AccessSite("scc.goagain.read", AccessKind.PLAIN),
))


# ----------------------------------------------------------------------
# Performance level
# ----------------------------------------------------------------------

def run_perf(graph, recorder, seed: int = 0, trim: bool = False) -> dict:
    """Max-ID SCC with recorded accesses.

    Both variants run the identical computation (max propagation is
    monotonic, so the baseline races are "benign" on this simulator);
    only access pricing differs.

    ``trim=True`` enables the trim-1 preprocessing the real ECL
    pipeline uses: vertices with zero in- or out-degree are singleton
    SCCs and retire before any propagation, shrinking the workload on
    power-law inputs with many peripheral vertices.  Off by default so
    the speedup study's access profile matches the paper's measured
    codes (the optimization is shared by both variants and cancels in
    the speedup anyway).
    """
    n = graph.num_vertices
    src = edge_sources(graph)
    dst = graph.col_indices.astype(np.int64)

    scc = np.full(n, -1, dtype=np.int64)
    active_v = np.ones(n, dtype=bool)
    alive_e = np.ones(graph.num_edges, dtype=bool)

    if trim:
        _trim_trivial(n, src, dst, scc, active_v, alive_e, recorder)

    recorder.touch("pathmax", 8 * n)
    recorder.touch("csr", 8 * graph.num_edges + 16 * (n + 1))

    def propagate(out_dir: bool) -> np.ndarray:
        """Monotonic max propagation over the active subgraph.

        ``out_dir=True`` computes fwd (max reachable from v): v's value
        absorbs its out-neighbors' values, i.e. propagation pulls along
        out-edges.  ``out_dir=False`` computes bwd by pulling along
        reversed edges (push along out-edges).
        """
        val = np.where(active_v, np.arange(n, dtype=np.int64), -1)
        recorder.store("scc.pathmax.write", count=int(active_v.sum()))
        recorder.round()
        edges = np.flatnonzero(alive_e)
        e_src = src[edges]
        e_dst = dst[edges]
        while True:
            recorder.round()
            recorder.structure(edges.size)
            recorder.load("scc.pathmax.read", count=edges.size)
            recorder.compute(edges.size)
            if out_dir:
                # pull: val[u] = max(val[u], val[v]) for edge (u, v)
                contrib = val[e_dst]
                targets = e_src
            else:
                contrib = val[e_src]
                targets = e_dst
            new_val = val.copy()
            np.maximum.at(new_val, targets, contrib)
            # per-edge update attempts: every improving edge writes its
            # target's pair, so hot (high-degree) vertices take many
            # colliding writes — the mechanism behind Table IX's negative
            # degree correlation for SCC
            improving = contrib > val[targets]
            recorder.store("scc.pathmax.write",
                           indices=targets[improving])
            changed = int(np.count_nonzero(new_val != val))
            # every updated vertex raises the single go-again flag: in
            # the race-free code these are atomics colliding on one word
            if changed:
                recorder.store("scc.goagain.write",
                               indices=np.zeros(changed, dtype=np.int64))
            recorder.load("scc.goagain.read", count=1)
            if changed == 0:
                return val
            val = new_val

    while np.any(active_v):
        fwd = propagate(out_dir=True)
        bwd = propagate(out_dir=False)
        settled = active_v & (fwd == bwd)
        # every active max-pivot settles its SCC, so progress is certain
        scc[settled] = fwd[settled]
        active_v &= ~settled
        alive_e &= active_v[src] & active_v[dst]

    return {"labels": scc}


def _trim_trivial(n, src, dst, scc, active_v, alive_e, recorder) -> None:
    """Trim-1: iteratively retire vertices with no live in- or
    out-edges — their SCCs are singletons."""
    while True:
        recorder.round()
        live = np.flatnonzero(alive_e)
        recorder.structure(2 * live.size)
        recorder.compute(live.size)
        out_deg = np.bincount(src[live], minlength=n)
        in_deg = np.bincount(dst[live], minlength=n)
        trivial = active_v & ((out_deg == 0) | (in_deg == 0))
        n_trim = int(np.count_nonzero(trivial))
        if n_trim == 0:
            return
        ids = np.flatnonzero(trivial)
        scc[ids] = ids
        active_v[ids] = False
        alive_e &= active_v[src] & active_v[dst]
        recorder.store("scc.pathmax.write", count=n_trim)


# ----------------------------------------------------------------------
# SIMT level
# ----------------------------------------------------------------------

def make_scc_propagate_kernel(variant: Variant, out_dir: bool):
    """One propagation launch: every active vertex pulls the max of its
    neighbors' values into its own half of the int2 pair."""
    from repro.gpu.atomics import (
        read_first,
        read_second,
        write_first,
        write_second,
    )

    # kind-driven (not variant-driven) so repair overrides engage the
    # hand-written Fig. 5 half accessors: promoting the pathmax sites to
    # ATOMIC *means* per-half 32-bit atomics, not an 8-byte atomic pair
    read_kind = site_kind(ACCESS_PLAN, variant, "scc.pathmax.read")
    write_kind = site_kind(ACCESS_PLAN, variant, "scc.pathmax.write")
    goagain_w = site_kind(ACCESS_PLAN, variant, "scc.goagain.write")

    def read_half(ctx, pathmax, v):
        if read_kind is AccessKind.ATOMIC:
            if out_dir:
                value = yield from read_first(ctx, pathmax, v,
                                              site="scc.pathmax.read")
            else:
                value = yield from read_second(ctx, pathmax, v,
                                               site="scc.pathmax.read")
            return value
        # baseline: whole-pair plain read (may tear across halves,
        # which the code tolerates; within-half tearing cannot happen
        # on this 32-bit-word simulator, matching real GPUs)
        pair = yield ctx.load(pathmax, v, read_kind,
                              site="scc.pathmax.read")
        lo = pair & 0xFFFFFFFF
        hi = (pair >> 32) & 0xFFFFFFFF
        return lo if out_dir else hi

    def write_half(ctx, pathmax, v, value):
        if write_kind is AccessKind.ATOMIC:
            if out_dir:
                yield from write_first(ctx, pathmax, v, value,
                                       site="scc.pathmax.write")
            else:
                yield from write_second(ctx, pathmax, v, value,
                                        site="scc.pathmax.write")
            return
        pair = yield ctx.load(pathmax, v, read_kind,
                              site="scc.pathmax.read")
        if out_dir:
            pair = (pair & ~0xFFFFFFFF) | (value & 0xFFFFFFFF)
        else:
            pair = (pair & 0xFFFFFFFF) | ((value & 0xFFFFFFFF) << 32)
        yield ctx.store(pathmax, v, pair, write_kind,
                        site="scc.pathmax.write")

    def scc_kernel(ctx: ThreadCtx, offsets, indices, pathmax, active,
                   goagain):
        v = ctx.tid
        if v >= active.length:
            return
        is_active = yield ctx.load(active, v)
        if not is_active:
            return
        beg = yield ctx.load(offsets, v)
        end = yield ctx.load(offsets, v + 1)
        mine = yield from read_half(ctx, pathmax, v)
        best = mine
        for e in range(beg, end):
            u = yield ctx.load(indices, e)
            u_active = yield ctx.load(active, u)
            if not u_active:
                continue
            theirs = yield from read_half(ctx, pathmax, u)
            if theirs > best:
                best = theirs
        if best > mine:
            yield from write_half(ctx, pathmax, v, best)
            yield ctx.store(goagain, 0, 1, goagain_w,
                            site="scc.goagain.write")

    return scc_kernel


def run_simt(graph, variant: Variant, scheduler=None,
             executor: SimtExecutor | None = None):
    """Run SCC on the SIMT interpreter (small directed graphs only)."""
    from repro.gpu.accesses import DType

    mem = executor.memory if executor else GlobalMemory()
    ex = executor or SimtExecutor(mem, scheduler=scheduler)
    n = graph.num_vertices
    rev = graph.reversed()

    offsets = mem.alloc("scc_offsets", n + 1, DType.I64)
    indices = mem.alloc("scc_indices", max(1, graph.num_edges), DType.I32)
    roffsets = mem.alloc("scc_roffsets", n + 1, DType.I64)
    rindices = mem.alloc("scc_rindices", max(1, rev.num_edges), DType.I32)
    pathmax = mem.alloc("scc_pathmax", n, DType.INT2)
    active = mem.alloc("scc_active", n, DType.I32)
    goagain = mem.alloc("scc_goagain", 1, DType.I32)
    mem.upload(offsets, graph.row_offsets)
    mem.upload(roffsets, rev.row_offsets)
    if graph.num_edges:
        mem.upload(indices, graph.col_indices)
        mem.upload(rindices, rev.col_indices)

    scc = np.full(n, -1, dtype=np.int64)
    active_np = np.ones(n, dtype=bool)

    fwd_kernel = make_scc_propagate_kernel(variant, out_dir=True)
    bwd_kernel = make_scc_propagate_kernel(variant, out_dir=False)

    while np.any(active_np):
        mem.upload(active, active_np.astype(np.int64))
        init = np.where(active_np, np.arange(n, dtype=np.int64), 0)
        # pack (first=fwd, second=bwd) identically
        mem.upload(pathmax, (init << 32) | init)
        # fwd: pull along out-edges
        while True:
            mem.element_write(goagain, 0, 0)
            ex.launch(fwd_kernel, n, offsets, indices, pathmax, active,
                      goagain)
            if mem.element_read(goagain, 0) == 0:
                break
        # bwd: pull along reversed edges
        while True:
            mem.element_write(goagain, 0, 0)
            ex.launch(bwd_kernel, n, roffsets, rindices, pathmax, active,
                      goagain)
            if mem.element_read(goagain, 0) == 0:
                break
        pairs = mem.download(pathmax)
        fwd = pairs & 0xFFFFFFFF
        bwd = (pairs >> 32) & 0xFFFFFFFF
        settled = active_np & (fwd == bwd)
        scc[settled] = fwd[settled]
        active_np &= ~settled

    for name in ("scc_offsets", "scc_indices", "scc_roffsets",
                 "scc_rindices", "scc_pathmax", "scc_active",
                 "scc_goagain"):
        mem.free(name)
    return scc, ex


register_algorithm(AlgorithmInfo(
    key="scc",
    full_name="strongly connected components (ECL-SCC)",
    directed=True,
    needs_weights=False,
    has_races=True,
    perf_runner=run_perf,
    module="repro.algorithms.scc",
))
