"""ECL-CC: connected components via label propagation + union-find.

The baseline ECL-CC code (Section II.B.2) is asynchronous and
lock-free: it keeps one ``int`` label per vertex, hooks components
together with atomicCAS, and — crucially for this paper — performs the
*pointer jumping* of its union-find find operation with unprotected
(non-volatile) loads and stores.  Those plain accesses enjoy a high L1
hit rate; the race-free conversion turns every one of them into a
relaxed atomic served at L2, which is why CC shows the largest slowdown
of the suite (geomean 0.45-0.88, Tables IV-VII).

Performance level: a Shiloach-Vishkin-style round structure (min-label
hooking + full pointer jumping per round) whose access profile is
dominated by jump reads, like the original.

SIMT level: a faithful per-edge kernel with find (path compression) and
CAS hooking, for race detection and schedule-robustness tests.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import edge_sources
from repro.core.transform import AccessPlan, AccessSite, site_kind
from repro.core.variants import AlgorithmInfo, Variant, register_algorithm
from repro.gpu.accesses import AccessKind, RMWOp
from repro.gpu.memory import ArrayHandle, GlobalMemory
from repro.gpu.simt import SimtExecutor, ThreadCtx

ACCESS_PLAN = AccessPlan("cc", (
    # pointer-jumping reads (the dominant racy site, Section VI.A);
    # these double as the label gather while hooking edges
    AccessSite("cc.label.jump_read", AccessKind.PLAIN),
    # path-compression stores during jumping
    AccessSite("cc.label.jump_write", AccessKind.PLAIN, is_store=True),
    # hooking is already an atomicCAS in the baseline
    AccessSite("cc.label.hook", AccessKind.ATOMIC, is_rmw=True),
))


# ----------------------------------------------------------------------
# Performance level
# ----------------------------------------------------------------------

def run_perf(graph, recorder, seed: int = 0) -> dict:
    """ECL-CC-profile connected components with recorded accesses.

    Mirrors the original's single compute launch: every undirected edge
    is processed once; each processing resolves both endpoint roots
    (pointer jumping with compression — an unprotected read *and* write
    per jump in the baseline, Section VI.A) and hooks the larger root
    under the smaller with an atomicCAS, retrying until the roots agree.
    A final flatten launch points every vertex at its representative.

    The two variants run the identical computation; only the access
    pricing differs (the baseline races are on monotonic label updates,
    so they are "benign" on this simulator).
    """
    from repro.algorithms.common import recorded_roots

    n = graph.num_vertices
    m = graph.num_edges
    src = edge_sources(graph)
    dst = graph.col_indices.astype(np.int64)
    canon = src < dst  # each thread processes neighbors u < v once
    eu = src[canon]
    ev = dst[canon]
    label = np.arange(n, dtype=np.int64)

    recorder.touch("label", 4 * n)
    recorder.touch("csr", 4 * m + 8 * (n + 1))
    recorder.store("cc.label.jump_write", count=n)  # init kernel
    recorder.round(launches=2)  # init + compute launch
    recorder.structure(m)       # every thread scans its adjacency once
    recorder.compute(m)

    # in-kernel hook/retry loops, modelled as vectorized sweeps over the
    # edges whose endpoints still disagree
    remaining = np.arange(eu.shape[0], dtype=np.int64)
    while remaining.size:
        ru = recorded_roots(label, eu[remaining], recorder,
                            "cc.label.jump_read", "cc.label.jump_write")
        rv = recorded_roots(label, ev[remaining], recorder,
                            "cc.label.jump_read", "cc.label.jump_write")
        cross = ru != rv
        remaining = remaining[cross]
        if remaining.size == 0:
            break
        lo = np.minimum(ru[cross], rv[cross])
        hi = np.maximum(ru[cross], rv[cross])
        recorder.rmw("cc.label.hook", indices=hi)
        np.minimum.at(label, hi, lo)
        # compression applied by the finds of the next sweep
        label = label[label]

    # flatten launch: label[v] = find(v)
    recorder.round()
    roots = recorded_roots(label, np.arange(n, dtype=np.int64), recorder,
                           "cc.label.jump_read", "cc.label.jump_write")
    recorder.store("cc.label.jump_write", count=n)
    return {"labels": roots}


# ----------------------------------------------------------------------
# SIMT level
# ----------------------------------------------------------------------

def _find(ctx: ThreadCtx, label: ArrayHandle, x: int,
          read_kind: AccessKind, write_kind: AccessKind):
    """Union-find find with (racy in the baseline) path compression."""
    parent = yield ctx.load(label, x, read_kind, site="cc.label.jump_read")
    while parent != x:
        grand = yield ctx.load(label, parent, read_kind,
                               site="cc.label.jump_read")
        if grand == parent:
            return parent
        # pointer jumping: monotonic shortcut, unprotected in baseline
        yield ctx.store(label, x, grand, write_kind,
                        site="cc.label.jump_write")
        x = parent
        parent = grand
    return x


def make_cc_kernel(variant: Variant):
    """Build the per-vertex CC kernel for ``variant``."""
    jump_read = site_kind(ACCESS_PLAN, variant, "cc.label.jump_read")
    jump_write = site_kind(ACCESS_PLAN, variant, "cc.label.jump_write")

    def cc_kernel(ctx: ThreadCtx, offsets, indices, label, changed):
        v = ctx.tid
        if v >= label.length:
            return
        beg = yield ctx.load(offsets, v)      # private CSR reads
        end = yield ctx.load(offsets, v + 1)
        for e in range(beg, end):
            u = yield ctx.load(indices, e)
            if u >= v:
                continue  # process each undirected edge once
            rv = yield from _find(ctx, label, v, jump_read, jump_write)
            ru = yield from _find(ctx, label, u, jump_read, jump_write)
            while rv != ru:
                lo, hi = (ru, rv) if ru < rv else (rv, ru)
                old = yield ctx.atomic_cas(label, hi, hi, lo,
                                           site="cc.label.hook")
                if old == hi:
                    yield ctx.store(changed, 0, 1, AccessKind.ATOMIC)
                    break
                rv = yield from _find(ctx, label, hi, jump_read, jump_write)
                ru = yield from _find(ctx, label, lo, jump_read, jump_write)

    return cc_kernel


def make_flatten_kernel(variant: Variant):
    """Final kernel: ``label[v] = find(v)`` so every vertex points at
    its representative."""
    jump_read = site_kind(ACCESS_PLAN, variant, "cc.label.jump_read")
    jump_write = site_kind(ACCESS_PLAN, variant, "cc.label.jump_write")

    def flatten_kernel(ctx: ThreadCtx, label):
        v = ctx.tid
        if v >= label.length:
            return
        root = yield from _find(ctx, label, v, jump_read, jump_write)
        yield ctx.store(label, v, root, jump_write,
                        site="cc.label.jump_write")

    return flatten_kernel


def run_simt(graph, variant: Variant, scheduler=None,
             executor: SimtExecutor | None = None) -> tuple[np.ndarray, SimtExecutor]:
    """Run CC on the SIMT interpreter (small graphs only)."""
    from repro.gpu.accesses import DType

    mem = executor.memory if executor else GlobalMemory()
    ex = executor or SimtExecutor(mem, scheduler=scheduler)
    n = graph.num_vertices
    offsets = mem.alloc("cc_offsets", n + 1, DType.I64)
    indices = mem.alloc("cc_indices", max(1, graph.num_edges), DType.I32)
    label = mem.alloc("cc_label", n, DType.I32)
    changed = mem.alloc("cc_changed", 1, DType.I32)
    mem.upload(offsets, graph.row_offsets)
    if graph.num_edges:
        mem.upload(indices, graph.col_indices)
    else:
        mem.upload(indices, np.zeros(1, dtype=np.int64))
    mem.upload(label, np.arange(n))

    kernel = make_cc_kernel(variant)
    while True:
        mem.element_write(changed, 0, 0)
        ex.launch(kernel, n, offsets, indices, label, changed)
        if mem.element_read(changed, 0) == 0:
            break
    ex.launch(make_flatten_kernel(variant), n, label)
    labels = mem.download(label)
    for name in ("cc_offsets", "cc_indices", "cc_label", "cc_changed"):
        mem.free(name)
    return labels, ex


register_algorithm(AlgorithmInfo(
    key="cc",
    full_name="connected components (ECL-CC)",
    directed=False,
    needs_weights=False,
    has_races=True,
    perf_runner=run_perf,
    module="repro.algorithms.cc",
))
