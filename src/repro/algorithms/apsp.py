"""ECL-APSP: all-pairs shortest paths via blocked Floyd-Warshall.

APSP is the suite's only *regular* code (Section IV.A): it processes a
dense shared distance matrix with constant strides, each element is
written by exactly one thread per phase, and the blocked structure of
the Floyd-Warshall algorithm (diagonal tile, then the tile's row and
column, then the remainder) orders all conflicting accesses with
barriers.  It therefore has **no data races** and — like the paper — is
implemented and validated but excluded from the speedup study.

The SIMT kernel exists precisely to demonstrate that: the race detector
finds nothing, under any schedule.
"""

from __future__ import annotations

import numpy as np

from repro.core.transform import AccessPlan, AccessSite, site_kind
from repro.core.variants import AlgorithmInfo, Variant, register_algorithm
from repro.gpu.accesses import AccessKind
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import SimtExecutor, ThreadCtx

#: every site is marked unshared: the blocked schedule guarantees only
#: one thread touches a given element between barriers, so the
#: race-removal transform is (correctly) a no-op for APSP
ACCESS_PLAN = AccessPlan("apsp", (
    AccessSite("apsp.dist.read", AccessKind.PLAIN, shared=False),
    AccessSite("apsp.dist.write", AccessKind.PLAIN, is_store=True,
               shared=False),
))

#: the shared-memory tile kernel's sites.  The *tile* accesses conflict
#: across threads (thread (i,j) reads row i and column j cells staged by
#: other threads), so they are repairable; the global-distance accesses
#: are element-private and marked unshared.
SHARED_PLAN = AccessPlan("apsp_shared", (
    AccessSite("apsp.tile.read", AccessKind.PLAIN),
    AccessSite("apsp.tile.write", AccessKind.PLAIN, is_store=True),
    AccessSite("apsp.gdist.read", AccessKind.PLAIN, shared=False),
    AccessSite("apsp.gdist.write", AccessKind.PLAIN, is_store=True,
               shared=False),
))

#: the one barrier slot of the shared-memory kernel: it gates the
#: post-staging barrier *and* every per-k barrier (the real code's
#: ``__syncthreads()`` sites stand or fall together — dropping any one
#: of them is the same missing-ordering bug)
APSP_SYNC_SLOT = "apsp.sync"

INF = 1 << 40
TILE = 64  # the paper's 64x64 subblocks


def run_perf(graph, recorder, seed: int = 0) -> dict:
    """Blocked Floyd-Warshall with recorded accesses.

    Both variants are identical (the plan has no racy site).  Intended
    for small graphs — the distance matrix is dense.
    """
    if not graph.has_weights:
        graph = graph.with_random_weights(seed=seed)
    n = graph.num_vertices
    dist = np.full((n, n), INF, dtype=np.int64)
    np.fill_diagonal(dist, 0)
    src, dst = graph.edge_array()
    np.minimum.at(dist, (src, dst), graph.weights)

    recorder.touch("dist", 8 * n * n)
    n_tiles = (n + TILE - 1) // TILE
    for k in range(n):
        # one fused launch per TILE iterations in the real code
        if k % TILE == 0:
            recorder.round(launches=3)  # diagonal / row+col / remainder
        recorder.load("apsp.dist.read", count=2 * n * n)
        recorder.compute(n * n)
        relaxed = dist[:, k, None] + dist[None, k, :]
        improved = relaxed < dist
        recorder.store("apsp.dist.write",
                       count=int(np.count_nonzero(improved)))
        np.minimum(dist, relaxed, out=dist)
    del n_tiles
    return {"dist": dist}


def make_apsp_kernel():
    """One thread per matrix element, barrier-separated k iterations."""

    def apsp_kernel(ctx: ThreadCtx, dist, n):
        i, j = divmod(ctx.tid, n)
        for k in range(n):
            dik = yield ctx.load(dist, i * n + k, AccessKind.PLAIN)
            dkj = yield ctx.load(dist, k * n + j, AccessKind.PLAIN)
            dij = yield ctx.load(dist, i * n + j, AccessKind.PLAIN)
            if dik + dkj < dij:
                yield ctx.store(dist, i * n + j, dik + dkj,
                                AccessKind.PLAIN)
            yield ctx.barrier()

    return apsp_kernel


def run_simt(graph, scheduler=None,
             executor: SimtExecutor | None = None):
    """Run APSP on the SIMT interpreter (tiny graphs: n^2 threads)."""
    from repro.gpu.accesses import DType

    if not graph.has_weights:
        graph = graph.with_random_weights(seed=0)
    mem = executor.memory if executor else GlobalMemory()
    ex = executor or SimtExecutor(mem, scheduler=scheduler)
    n = graph.num_vertices
    dist = mem.alloc("apsp_dist", n * n, DType.I64)
    init = np.full((n, n), INF, dtype=np.int64)
    np.fill_diagonal(init, 0)
    src, dst = graph.edge_array()
    np.minimum.at(init, (src, dst), graph.weights)
    mem.upload(dist, init.ravel())

    # one block: Floyd-Warshall needs a global barrier per k iteration
    ex.launch(make_apsp_kernel(), n * n, dist, n, block_dim=n * n)
    result = mem.download(dist).reshape(n, n)
    mem.free("apsp_dist")
    return result, ex


def make_apsp_shared_kernel(sync: bool = True,
                            variant: Variant = Variant.BASELINE):
    """Floyd-Warshall over a ``__shared__`` tile (ECL-APSP's key
    optimization: "utilizing the shared memory on the GPU ...
    significantly reduces global memory accesses").

    One block stages the distance tile into shared memory, iterates k
    with block barriers, and writes the result back — a faithful
    miniature of the paper code's diagonal-tile phase.  With
    ``sync=False`` every barrier (the :data:`APSP_SYNC_SLOT` slot) is
    elided, which makes the tile accesses race — this is the repair
    pipeline's entry point: the only fix that restores the blocked
    schedule's ordering is re-enabling the slot.  The tile accesses are
    kind-driven through :data:`SHARED_PLAN`, so promotion candidates
    apply without source edits.
    """
    tile_read = site_kind(SHARED_PLAN, variant, "apsp.tile.read")
    tile_write = site_kind(SHARED_PLAN, variant, "apsp.tile.write")
    gdist_read = site_kind(SHARED_PLAN, variant, "apsp.gdist.read")
    gdist_write = site_kind(SHARED_PLAN, variant, "apsp.gdist.write")

    def apsp_shared_kernel(ctx: ThreadCtx, dist, n):
        tile = ctx.shared("tile")
        i, j = divmod(ctx.tid, n)
        v = yield ctx.load(dist, i * n + j, gdist_read,
                           site="apsp.gdist.read")
        yield ctx.store(tile, i * n + j, v, tile_write,
                        site="apsp.tile.write")
        if sync:
            yield ctx.barrier()
        for k in range(n):
            dik = yield ctx.load(tile, i * n + k, tile_read,
                                 site="apsp.tile.read")
            dkj = yield ctx.load(tile, k * n + j, tile_read,
                                 site="apsp.tile.read")
            dij = yield ctx.load(tile, i * n + j, tile_read,
                                 site="apsp.tile.read")
            if dik + dkj < dij:
                yield ctx.store(tile, i * n + j, dik + dkj,
                                tile_write, site="apsp.tile.write")
            if sync:
                yield ctx.barrier()
        out = yield ctx.load(tile, i * n + j, tile_read,
                             site="apsp.tile.read")
        yield ctx.store(dist, i * n + j, out, gdist_write,
                        site="apsp.gdist.write")

    return apsp_shared_kernel


def run_simt_shared(graph, scheduler=None,
                    executor: SimtExecutor | None = None,
                    sync: bool = True):
    """Run the shared-memory APSP kernel (tiny graphs: one tile)."""
    from repro.gpu.accesses import DType

    if not graph.has_weights:
        graph = graph.with_random_weights(seed=0)
    mem = executor.memory if executor else GlobalMemory()
    ex = executor or SimtExecutor(mem, scheduler=scheduler)
    n = graph.num_vertices
    dist = mem.alloc("apsps_dist", n * n, DType.I64)
    init = np.full((n, n), INF, dtype=np.int64)
    np.fill_diagonal(init, 0)
    src, dst = graph.edge_array()
    np.minimum.at(init, (src, dst), graph.weights)
    mem.upload(dist, init.ravel())

    ex.launch(make_apsp_shared_kernel(sync=sync), n * n, dist, n,
              block_dim=n * n,
              shared={"tile": (n * n, DType.I64)})
    result = mem.download(dist).reshape(n, n)
    mem.free("apsps_dist")
    return result, ex


def _perf_entry(graph, recorder, seed: int = 0) -> dict:
    return run_perf(graph, recorder, seed)


register_algorithm(AlgorithmInfo(
    key="apsp",
    full_name="all-pairs shortest paths (ECL-APSP)",
    directed=False,
    needs_weights=True,
    has_races=False,
    perf_runner=_perf_entry,
    module="repro.algorithms.apsp",
))
