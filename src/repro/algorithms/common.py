"""Shared vectorized-CSR helpers for the performance-level runners."""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def edge_sources(graph: CSRGraph) -> np.ndarray:
    """Per-edge source vertex (parallel to ``graph.col_indices``)."""
    return np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), graph.degrees()
    )


def segment_max(values: np.ndarray, row_offsets: np.ndarray,
                empty: int) -> np.ndarray:
    """Per-vertex max of edge-parallel ``values``; ``empty`` for
    zero-degree vertices."""
    n = row_offsets.shape[0] - 1
    out = np.full(n, empty, dtype=values.dtype)
    starts = row_offsets[:-1]
    nonempty = row_offsets[1:] > starts
    if values.shape[0]:
        reduced = np.maximum.reduceat(values, starts[nonempty])
        out[nonempty] = reduced
    return out


def segment_min(values: np.ndarray, row_offsets: np.ndarray,
                empty: int) -> np.ndarray:
    """Per-vertex min of edge-parallel ``values``."""
    n = row_offsets.shape[0] - 1
    out = np.full(n, empty, dtype=values.dtype)
    starts = row_offsets[:-1]
    nonempty = row_offsets[1:] > starts
    if values.shape[0]:
        reduced = np.minimum.reduceat(values, starts[nonempty])
        out[nonempty] = reduced
    return out


def segment_any(flags: np.ndarray, row_offsets: np.ndarray) -> np.ndarray:
    """Per-vertex OR of edge-parallel boolean ``flags``."""
    return segment_max(flags.astype(np.int8), row_offsets, 0).astype(bool)


def recorded_roots(parent: np.ndarray, starts: np.ndarray, recorder,
                   read_site: str, write_site: str | None = None) -> np.ndarray:
    """Union-find root resolution with per-entry access counting.

    Mirrors a per-thread ``find`` loop: every entry loads parent
    pointers until it sees a self-parent, optionally storing a
    compression shortcut per jump (``write_site``).  Entries whose path
    is already flat cost two loads; only entries still walking keep
    generating traffic — this is exactly how implicit path compression
    keeps ECL-MST's racy-access count low (Section VI.A).

    ``parent`` itself is not modified (compression is applied by the
    caller where the algorithm does it).
    """
    starts = np.asarray(starts)
    out = parent[starts]
    recorder.load(read_site, count=int(out.size))  # load parent[x]
    active = np.flatnonzero(out != starts)         # parent[x] == x: done
    while active.size:
        cur = out[active]
        nxt = parent[cur]
        recorder.load(read_site, count=int(active.size))
        moved = nxt != cur
        n_moved = int(np.count_nonzero(moved))
        if n_moved and write_site is not None:
            # compression shortcut stored per successful jump
            recorder.store(write_site, count=n_moved)
        out[active] = nxt
        active = active[moved]
    return out


def pointer_jump(parent: np.ndarray) -> tuple[np.ndarray, int]:
    """Fully compress a parent forest via repeated ``p = p[p]``.

    Returns the compressed array and the number of jump passes — the
    access count driver for the union-find codes.
    """
    passes = 0
    while True:
        grand = parent[parent]
        passes += 1
        if np.array_equal(grand, parent):
            return parent, passes
        parent = grand
