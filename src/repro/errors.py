"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised for malformed or inconsistent graph data."""


class GraphFormatError(GraphError):
    """Raised when parsing a graph file that violates its format."""


class DeviceError(ReproError):
    """Raised for unknown devices or invalid device specifications."""


class KernelError(ReproError):
    """Raised when a simulated kernel misbehaves (bad yield, bad index)."""


class MemoryAccessError(KernelError):
    """Raised for out-of-bounds or type-mismatched memory operations."""


class DataRaceError(ReproError):
    """Raised when the race checker is configured to fail on races."""


class DeadlockError(KernelError):
    """Raised when the SIMT executor detects that no thread can make
    progress (e.g. a spin loop reading a register-cached stale value)."""


class TransientKernelFault(KernelError):
    """Raised when an injected *transient* fault aborts a kernel launch
    (spurious launch failure, ECC retirement, driver hiccup).  Unlike a
    livelock, a retry with a fresh schedule seed may succeed."""


class CellTimeoutError(ReproError):
    """Raised when one sweep cell exceeds its wall-clock budget."""


class FaultConfigError(ReproError):
    """Raised for malformed fault-injection specifications."""


class ValidationError(ReproError):
    """Raised when an algorithm result fails verification."""


class ScheduleReplayError(ReproError):
    """Raised when a recorded schedule cannot be replayed: the program
    diverged from the decision log (different runnable set, exhausted
    log), which means program or inputs changed since recording."""


class ExplorationError(ReproError):
    """Raised when systematic schedule exploration loses determinism:
    re-executing a decision prefix reached a different state than the
    run that recorded it."""


class StudyError(ReproError):
    """Raised for inconsistent experiment configurations."""


class WorkerTaskError(StudyError):
    """Raised when a sweep cell task fails inside a pool worker.

    Wraps the worker's exception with the (algorithm, input, device)
    task key, so a parallel sweep failure names the cell that caused it
    instead of surfacing an anonymous traceback."""


class ServiceError(ReproError):
    """Raised for sweep-service configuration or lifecycle errors."""


class ProtocolError(ServiceError):
    """Raised for malformed service requests (bad HTTP framing, invalid
    JSON, or a study request that fails validation).  The server maps
    it to a 400-family response instead of dropping the connection."""


class SweepInterrupted(ReproError):
    """Raised when SIGINT/SIGTERM interrupts a resilient sweep.

    By the time this propagates the final checkpoint write has
    completed, so a later ``--resume`` continues from the last finished
    cell.  The CLI maps it to a distinct exit code (3)."""
