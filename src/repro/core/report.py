"""Report generation: the paper's tables and figure as text/CSV.

* :func:`speedup_table` — Tables IV-VIII layout (inputs x algorithms,
  with Min / Geomean / Max footer rows).
* :func:`geomean_summary` + :func:`fig6_bars` — Fig. 6's geometric-mean
  bars per algorithm per device.
* :func:`correlation_table` — Table IX: Pearson correlation of the
  speedups with edge count, vertex count, and average degree.
* :func:`to_csv` — the artifact's ``*_speedups.csv`` output format.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.study import SpeedupCell, paper_properties
from repro.errors import StudyError
from repro.utils.correlation import pearson
from repro.utils.stats import geometric_mean
from repro.utils.tables import format_table


def _grid(cells: list[SpeedupCell]) -> tuple[list[str], list[str], dict]:
    inputs: list[str] = []
    algos: list[str] = []
    values: dict[tuple[str, str], float] = {}
    for c in cells:
        if c.input_name not in inputs:
            inputs.append(c.input_name)
        if c.algorithm not in algos:
            algos.append(c.algorithm)
        values[(c.input_name, c.algorithm)] = c.speedup
    return inputs, algos, values


def speedup_table(cells: list[SpeedupCell], title: str = "") -> str:
    """Render cells as one of Tables IV-VIII (markdown)."""
    if not cells:
        raise StudyError("no cells to tabulate")
    inputs, algos, values = _grid(cells)
    headers = ["Input"] + [a.upper() for a in algos]
    rows: list[list[object]] = []
    for name in inputs:
        rows.append([name] + [values.get((name, a), float("nan"))
                              for a in algos])
    per_algo = {a: [values[(i, a)] for i in inputs if (i, a) in values]
                for a in algos}
    rows.append(["Min Speedup"] + [min(per_algo[a]) for a in algos])
    rows.append(["Geomean Speedup"]
                + [geometric_mean(per_algo[a]) for a in algos])
    rows.append(["Max Speedup"] + [max(per_algo[a]) for a in algos])
    table = format_table(headers, rows)
    return f"{title}\n{table}" if title else table


def resilient_speedup_table(cells: list, title: str = "") -> str:
    """Degraded-mode rendering of Tables IV-VIII.

    ``cells`` may mix :class:`SpeedupCell` with
    :class:`~repro.core.resilience.CellFailure`: failed cells render as
    ``FAIL(reason)``, the Min/Geomean/Max footer covers only the
    completed cells of each column, and any column with failures gets a
    ``[k/n]`` coverage annotation on its geomean so a partial sweep
    cannot masquerade as a complete one.  A failure list follows the
    table.
    """
    if not cells:
        raise StudyError("no cells to tabulate")
    inputs: list[str] = []
    algos: list[str] = []
    values: dict[tuple[str, str], object] = {}
    for c in cells:
        if c.input_name not in inputs:
            inputs.append(c.input_name)
        if c.algorithm not in algos:
            algos.append(c.algorithm)
        if isinstance(c, SpeedupCell):
            values[(c.input_name, c.algorithm)] = c.speedup
        else:
            values[(c.input_name, c.algorithm)] = f"FAIL({c.reason})"

    headers = ["Input"] + [a.upper() for a in algos]
    rows: list[list[object]] = []
    for name in inputs:
        rows.append([name] + [values.get((name, a), "")
                              for a in algos])

    def column(a: str) -> tuple[list[float], int]:
        cells_of_a = [values[(i, a)] for i in inputs if (i, a) in values]
        ok = [v for v in cells_of_a if isinstance(v, float)]
        return ok, len(cells_of_a)

    min_row: list[object] = ["Min Speedup"]
    geo_row: list[object] = ["Geomean Speedup"]
    max_row: list[object] = ["Max Speedup"]
    for a in algos:
        ok, total = column(a)
        if not ok:
            min_row.append("n/a")
            geo_row.append("n/a")
            max_row.append("n/a")
            continue
        min_row.append(min(ok))
        max_row.append(max(ok))
        geo = geometric_mean(ok)
        if len(ok) < total:
            geo_row.append(f"{geo:.2f} [{len(ok)}/{total}]")
        else:
            geo_row.append(geo)
    rows.extend([min_row, geo_row, max_row])

    table = format_table(headers, rows)
    failures = [c for c in cells if not isinstance(c, SpeedupCell)]
    done = len(cells) - len(failures)
    lines = [table, f"coverage: {done}/{len(cells)} cells completed"]
    for f in failures:
        lines.append(f"  {f.describe()}: {f.message}")
    body = "\n".join(lines)
    return f"{title}\n{body}" if title else body


def geomean_summary(
    cells: list[SpeedupCell],
) -> dict[str, dict[str, float]]:
    """Fig. 6 data: device -> algorithm -> geometric-mean speedup."""
    grouped: dict[str, dict[str, list[float]]] = defaultdict(
        lambda: defaultdict(list))
    for c in cells:
        grouped[c.device_key][c.algorithm].append(c.speedup)
    return {
        dev: {algo: geometric_mean(vals) for algo, vals in algos.items()}
        for dev, algos in grouped.items()
    }


def fig6_bars(summary: dict[str, dict[str, float]],
              width: int = 40) -> str:
    """ASCII rendering of Fig. 6 (geomean speedup bars, 1.0 marked)."""
    lines = []
    scale = width / 1.5  # axis to 1.5x
    for dev in summary:
        lines.append(f"{dev}:")
        for algo, value in sorted(summary[dev].items()):
            bar = "#" * max(1, int(round(value * scale)))
            marker_pos = int(round(1.0 * scale))
            padded = list(bar.ljust(width))
            if marker_pos < len(padded):
                padded[marker_pos] = "|"
            lines.append(f"  {algo.upper():4s} {value:5.2f} {''.join(padded)}")
    return "\n".join(lines)


def correlation_table(cells: list[SpeedupCell], scale: float = 1.0) -> str:
    """Table IX: correlation of speedups with input graph properties.

    ``scale`` must match the study that produced ``cells`` so the
    correlated properties come from the graphs actually run."""
    by_dev_algo: dict[str, dict[str, list[SpeedupCell]]] = defaultdict(
        lambda: defaultdict(list))
    for c in cells:
        by_dev_algo[c.device_key][c.algorithm].append(c)
    blocks = []
    for dev, algo_map in by_dev_algo.items():
        algos = sorted(algo_map)
        headers = ["Correlated with"] + [a.upper() for a in algos]
        rows: list[list[object]] = []
        for label, prop_idx in (("Edge Count", 0), ("Vertex Count", 1),
                                ("Average Degree", 2)):
            row: list[object] = [label]
            for a in algos:
                pts = algo_map[a]
                xs = [paper_properties(c.input_name, scale=scale)[prop_idx]
                      for c in pts]
                ys = [c.speedup for c in pts]
                try:
                    row.append(pearson(xs, ys))
                except ValueError:
                    row.append(float("nan"))
            rows.append(row)
        blocks.append(f"{dev}\n" + format_table(headers, rows))
    return "\n\n".join(blocks)


def to_csv(cells: list[SpeedupCell]) -> str:
    """The artifact's speedups CSV: input row per line, one column per
    algorithm (plus the device, since we simulate several)."""
    if not cells:
        raise StudyError("no cells to export")
    inputs, algos, values = _grid(cells)
    device = cells[0].device_key
    lines = ["input,device," + ",".join(algos)]
    for name in inputs:
        vals = ",".join(
            f"{values[(name, a)]:.4f}" if (name, a) in values else ""
            for a in algos
        )
        lines.append(f"{name},{device},{vals}")
    return "\n".join(lines)
