"""The race-removal transform (Section IV) as executable policy.

Every algorithm declares an :class:`AccessPlan`: the named
shared-memory access *sites* of its kernels, each with the access kind
the original ECL code uses.  :func:`remove_races` produces the race-free
plan by converting every non-atomic site on shared data into a relaxed
atomic — exactly the paper's methodology ("we replaced all memory
accesses to shared data with atomic load and store operations from
libcu++ ... using the relaxed memory ordering").

Both execution levels consult the plan: the SIMT kernels pick their
:class:`~repro.gpu.accesses.AccessKind` per site, and the performance
engine prices each recorded access by its site's kind.  This guarantees
the two variants of a code differ *only* in access kinds, never in
algorithmic structure — the property the paper's comparison relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.variants import Variant
from repro.errors import StudyError
from repro.gpu.accesses import AccessKind, MemoryOrder


@dataclass(frozen=True)
class AccessSite:
    """One named shared-memory access site of an algorithm.

    Parameters
    ----------
    name:
        Dotted identifier, e.g. ``"cc.label.jump_read"``.
    kind:
        Access kind in the *baseline* code (PLAIN, VOLATILE, or ATOMIC —
        some baseline sites are already atomic, e.g. ECL-CC's hooking
        CAS).
    elem_bytes:
        Element width in bytes (prices traffic; chars are 1).
    is_store:
        Whether the site writes.
    is_rmw:
        Read-modify-write site (always atomic in both variants).
    shared:
        Whether the data is shared between threads.  Non-shared sites
        (e.g. read-only CSR structure) are untouched by the transform.
    order:
        Memory order used when the site is atomic.  Every code in the
        suite gets away with RELAXED (Section IV.B); stronger orders
        cost extra (see the memory-order ablation bench).
    """

    name: str
    kind: AccessKind
    elem_bytes: int = 4
    is_store: bool = False
    is_rmw: bool = False
    shared: bool = True
    order: MemoryOrder = MemoryOrder.RELAXED


@dataclass(frozen=True)
class AccessPlan:
    """The full set of access sites of one algorithm."""

    algorithm: str
    sites: tuple[AccessSite, ...]

    def site(self, name: str) -> AccessSite:
        for s in self.sites:
            if s.name == name:
                return s
        raise StudyError(
            f"unknown access site {name!r} in plan for {self.algorithm}"
        )

    def racy_sites(self) -> list[AccessSite]:
        """Sites that constitute data races: shared non-atomic accesses."""
        return [s for s in self.sites
                if s.shared and s.kind is not AccessKind.ATOMIC]

    @property
    def has_races(self) -> bool:
        return bool(self.racy_sites())


def remove_races(plan: AccessPlan) -> AccessPlan:
    """Section IV.B: convert every racy site to a relaxed atomic.

    RMW sites and already-atomic sites pass through unchanged;
    non-shared sites (private or read-only data) keep their kind, since
    unshared accesses cannot race.
    """
    converted = tuple(
        replace(s, kind=AccessKind.ATOMIC) if s.shared else s
        for s in plan.sites
    )
    return AccessPlan(plan.algorithm, converted)


def remove_races_at(plan: AccessPlan, site_names: set[str] | list[str]
                    ) -> AccessPlan:
    """Partial conversion: make only the named sites atomic.

    Models an *incomplete* race-removal pass — useful for incremental
    migration studies and for failure injection in tests (a partially
    converted plan still has races, and the detector must still find
    them at the untouched sites).
    """
    names = set(site_names)
    known = {s.name for s in plan.sites}
    missing = names - known
    if missing:
        raise StudyError(
            f"unknown site(s) {sorted(missing)} in plan for "
            f"{plan.algorithm}"
        )
    converted = tuple(
        replace(s, kind=AccessKind.ATOMIC)
        if s.name in names and s.shared else s
        for s in plan.sites
    )
    return AccessPlan(plan.algorithm, converted)


def plan_for(plan: AccessPlan, variant: Variant) -> AccessPlan:
    """The effective plan of a variant."""
    if variant is Variant.BASELINE:
        return plan
    return remove_races(plan)


def site_kind(plan: AccessPlan, variant: Variant, name: str) -> AccessKind:
    """Access kind of ``name`` under ``variant`` — the single lookup
    both execution levels use.

    An active :func:`repro.gpu.overrides.site_kind_overrides` context
    shadows the plan's answer: this is how the repair pipeline applies
    a candidate fix to a kernel without editing algorithm source.
    """
    from repro.gpu.overrides import current_override

    override = current_override(name)
    if override is not None:
        # the override must still name a real site of this plan
        plan.site(name)
        return override
    return plan_for(plan, variant).site(name).kind


def with_site_kinds(plan: AccessPlan,
                    kinds: dict[str, AccessKind],
                    orders: dict[str, MemoryOrder] | None = None
                    ) -> AccessPlan:
    """Copy of ``plan`` with the named sites' kinds (and optionally
    orders) replaced — the plan-level form of a repair fix-set, used to
    price candidate fixes through the perf engine.

    Unlike :func:`remove_races_at`, this sets arbitrary kinds (a
    candidate may demote nothing but may promote to VOLATILE as well as
    ATOMIC) and leaves untouched sites exactly as they were.
    """
    orders = orders or {}
    unknown = (set(kinds) | set(orders)) - {s.name for s in plan.sites}
    if unknown:
        raise StudyError(
            f"unknown site(s) {sorted(unknown)} in plan for "
            f"{plan.algorithm}")
    converted = []
    for s in plan.sites:
        if s.name in kinds or s.name in orders:
            converted.append(replace(
                s, kind=kinds.get(s.name, s.kind),
                order=orders.get(s.name, s.order)))
        else:
            converted.append(s)
    return AccessPlan(plan.algorithm, tuple(converted))


def with_order(plan: AccessPlan, order: MemoryOrder) -> AccessPlan:
    """Copy of ``plan`` with every shared site using ``order``.

    The paper's codes need only RELAXED (Section IV.B); this helper
    exists for the memory-order ablation, which quantifies what the
    stronger defaults would cost.
    """
    return AccessPlan(plan.algorithm, tuple(
        replace(s, order=order) if s.shared else s for s in plan.sites
    ))
