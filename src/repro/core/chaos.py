"""Chaos harness: prove the sweep stack survives host failures.

Each :class:`ChaosScenario` runs a *real* mini-sweep (the same
:class:`~repro.core.resilience.ResilientStudy` + pool-executor path the
paper tables use) under one injected host failure mode from
:mod:`repro.core.hostfaults`, then asserts the two invariants the
robustness layer promises:

1. **Full coverage** — every (algorithm, input, variant) cell completes
   with no recorded failures, despite torn trace files, full disks,
   SIGKILLed workers, stalled workers, or a corrupted checkpoint
   generation.
2. **Byte-identical recovery** — ``save_results`` output equals the
   uninjected serial baseline byte for byte.  Recovery must not merely
   finish; it must change *nothing* about the science.

The scenario list covers every :class:`~repro.core.hostfaults.
HostFaultKind` (the harness refuses to report success otherwise) and
ends with a combined flagship run — worker kills + torn trace writes +
an externally corrupted checkpoint generation, resumed to completion —
which is the acceptance bar for the whole robustness layer.

Run it via ``python -m repro chaos`` (``--quick`` for the CI-sized
variant) or :func:`run_chaos` directly; ``tools/validate_chaos.py``
wraps the flagship invariant for CI.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.core import hostfaults
from repro.core.hostfaults import HostFaultKind, HostFaultPlan
from repro.core.resilience import ResilientStudy
from repro.errors import StudyError

#: mini-sweep grid: small suite inputs, two racy algorithms — large
#: enough to need the pool and the trace cache, small enough for CI
ALGOS = ("cc", "mis")
INPUTS = ("internet", "USA-road-d.NY")
DEVICE = "titanv"


@dataclass(frozen=True)
class ChaosScenario:
    """One injected host failure mode plus the sweep shape that
    exercises it."""

    name: str
    description: str
    spec: str                          # HostFaultPlan.parse() text
    targets: tuple[str, ...] = ()
    stall_seconds: float = 0.0
    disrupt_generations: int | None = None
    jobs: int = 1
    task_deadline_s: float | None = None
    #: record traces to disk with the plan installed, then re-read them
    #: from a second study (the quarantine/degrade detection path)
    two_phase_traces: bool = False
    #: after a completed checkpointed sweep, externally corrupt the
    #: current checkpoint generation and resume from it
    corrupt_checkpoint: bool = False

    def kinds(self) -> set[HostFaultKind]:
        return {s.kind for s in HostFaultPlan.parse(self.spec).specs}


@dataclass
class ChaosOutcome:
    """Result of one scenario run."""

    scenario: str
    ok: bool
    identical: bool
    coverage: tuple[int, int]
    detail: str

    def describe(self) -> str:
        done, total = self.coverage
        status = "ok" if self.ok else "FAIL"
        ident = "identical" if self.identical else "DIVERGED"
        return (f"{status:4s} {self.scenario:20s} coverage {done}/{total} "
                f"bytes {ident}  {self.detail}")


@dataclass
class ChaosReport:
    """All scenario outcomes of one :func:`run_chaos` invocation."""

    outcomes: list[ChaosOutcome]
    kinds_covered: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def render(self) -> str:
        lines = [o.describe() for o in self.outcomes]
        lines.append(f"fault kinds covered: {', '.join(self.kinds_covered)}")
        lines.append("chaos: all scenarios recovered byte-identically"
                     if self.ok else "chaos: FAILURES above")
        return "\n".join(lines)


def scenario_suite(jobs: int = 4) -> list[ChaosScenario]:
    """The standard scenario list; covers every host fault kind."""
    return [
        ChaosScenario(
            name="torn-trace",
            description="every trace-cache write is truncated mid-write",
            spec="torn=1.0", targets=("trace-*.json",),
            two_phase_traces=True),
        ChaosScenario(
            name="bitflip-trace",
            description="one bit of every stored trace payload flips",
            spec="bitflip=1.0", targets=("trace-*.json",),
            two_phase_traces=True),
        ChaosScenario(
            name="enospc-degrade",
            description="the trace disk is full; cache degrades to "
                        "memory-only",
            spec="enospc=1.0", targets=("trace-*.json",),
            two_phase_traces=True),
        ChaosScenario(
            name="eio-degrade",
            description="the trace disk is dying; writes fail with EIO",
            spec="eio=1.0", targets=("trace-*.json",),
            two_phase_traces=True),
        ChaosScenario(
            name="worker-kill",
            description="every first-generation pool worker is SIGKILLed",
            spec="kill=1.0", disrupt_generations=1, jobs=jobs),
        ChaosScenario(
            name="worker-stall",
            description="first-generation workers hang past the task "
                        "deadline",
            spec="stall=1.0", stall_seconds=20.0, disrupt_generations=1,
            jobs=max(2, min(jobs, 2)), task_deadline_s=1.0),
        ChaosScenario(
            name="checkpoint-fallback",
            description="the current checkpoint generation is corrupted "
                        "after the sweep; resume falls back to .prev",
            spec="torn=0.0", corrupt_checkpoint=True),
        ChaosScenario(
            name="combined",
            description="worker kills + torn trace writes + a corrupted "
                        "checkpoint generation, resumed to completion",
            spec="kill=1.0,torn=0.4", targets=("trace-*.json",),
            disrupt_generations=1, jobs=jobs, corrupt_checkpoint=True),
    ]


def _study(reps: int, checkpoint: Path | None,
           trace_dir: Path | None,
           task_deadline_s: float | None) -> ResilientStudy:
    study = ResilientStudy(
        reps=reps, checkpoint=checkpoint,
        trace_cache=trace_dir if trace_dir is not None else False)
    if task_deadline_s is not None:
        study.pool_task_deadline_s = task_deadline_s
    return study


def _sweep_bytes(study: ResilientStudy, out: Path, device: str,
                 algorithms: list[str], inputs: list[str],
                 jobs: int) -> tuple[bytes, tuple[int, int], int]:
    """Run one sweep, persist its results, and return
    (saved bytes, coverage, failure count)."""
    result = study.sweep(device, algorithms, inputs, jobs=jobs)
    study.save_results(out)
    return out.read_bytes(), result.coverage, len(result.failures)


def _corrupt_file(path: Path) -> None:
    """Externally damage one on-disk generation (torn to half size)."""
    data = path.read_bytes()
    path.write_bytes(data[: max(1, len(data) // 2)])


def run_scenario(scenario: ChaosScenario, baseline: bytes,
                 workdir: Path, device: str, algorithms: list[str],
                 inputs: list[str], reps: int,
                 seed: int) -> ChaosOutcome:
    """Execute one scenario and check both chaos invariants."""
    root = workdir / scenario.name
    root.mkdir(parents=True, exist_ok=True)
    ckpt = root / "sweep.ckpt"
    trace_dir = (root / "traces") if scenario.targets else None
    plan = HostFaultPlan.parse(
        scenario.spec, seed=seed, targets=scenario.targets,
        stall_seconds=scenario.stall_seconds,
        disrupt_generations=scenario.disrupt_generations)
    notes: list[str] = []

    with hostfaults.installed(plan):
        study = _study(reps, ckpt, trace_dir, scenario.task_deadline_s)
        data, coverage, failures = _sweep_bytes(
            study, root / "results.json", device, algorithms, inputs,
            scenario.jobs)
        if scenario.two_phase_traces:
            # phase 2: a fresh study re-reads the (faulted) trace disk —
            # the path where torn/flipped payloads are quarantined and a
            # failing disk trips degraded mode
            second = _study(reps, None, trace_dir,
                            scenario.task_deadline_s)
            data, coverage, failures = _sweep_bytes(
                second, root / "results.json", device, algorithms,
                inputs, scenario.jobs)
            cache = second.trace_cache
            if cache.quarantined:
                notes.append(f"quarantined={cache.quarantined}")
            if cache.degraded:
                notes.append(f"degraded after {cache.disk_errors} "
                             "disk errors")
        if scenario.corrupt_checkpoint:
            # phase 2: damage the current checkpoint generation, then
            # resume — the load must fall back to .prev and the sweep
            # must finish the (at most one) cell the rotation lost
            _corrupt_file(ckpt)
            resumed = _study(reps, ckpt, trace_dir,
                             scenario.task_deadline_s)
            n_res, n_fail = resumed.load_checkpoint()
            data, coverage, failures = _sweep_bytes(
                resumed, root / "results.json", device, algorithms,
                inputs, scenario.jobs)
            notes.append(f"fallbacks={resumed.checkpoint_fallbacks} "
                         f"resumed={n_res}+{n_fail} "
                         f"reran={resumed.cells_executed}")
            if resumed.checkpoint_fallbacks < 1:
                notes.append("EXPECTED a .prev fallback")

    identical = data == baseline
    done, total = coverage
    ok = (identical and failures == 0 and done == total
          and not any(n.startswith("EXPECTED") for n in notes))
    detail = "; ".join([scenario.description] + notes)
    return ChaosOutcome(scenario=scenario.name, ok=ok,
                        identical=identical, coverage=coverage,
                        detail=detail)


def run_chaos(device: str = DEVICE, inputs: list[str] | None = None,
              reps: int = 2, jobs: int = 4, seed: int = 0,
              quick: bool = False,
              workdir: str | Path | None = None) -> ChaosReport:
    """Run the full chaos suite and return a :class:`ChaosReport`.

    ``quick`` shrinks the grid (one input, one repetition) for CI; the
    scenario list — and therefore the fault kinds exercised — is the
    same in both modes.  The harness self-checks that the suite covers
    every :class:`~repro.core.hostfaults.HostFaultKind` so a future
    kind cannot silently ship untested.
    """
    algorithms = list(ALGOS)
    if inputs is None:
        inputs = list(INPUTS[:1] if quick else INPUTS)
    if quick:
        reps = 1
    workdir = Path(workdir) if workdir is not None else Path(
        tempfile.mkdtemp(prefix="repro-chaos-"))
    workdir.mkdir(parents=True, exist_ok=True)

    scenarios = scenario_suite(jobs=jobs)
    covered = set()
    for s in scenarios:
        covered |= s.kinds()
    missing = set(HostFaultKind) - covered
    if missing:
        raise StudyError(
            "chaos suite does not cover host fault kind(s): "
            + ", ".join(sorted(k.value for k in missing)))

    # the truth the injected runs must reproduce byte for byte: an
    # uninjected, serial, cache-less sweep
    base_study = _study(reps, None, None, None)
    baseline, coverage, failures = _sweep_bytes(
        base_study, workdir / "baseline.json", device, algorithms,
        inputs, jobs=1)
    if failures or coverage[0] != coverage[1]:
        raise StudyError(
            "chaos baseline sweep failed without any injection — fix "
            "the sweep before measuring its resilience")

    outcomes = [
        run_scenario(s, baseline, workdir, device, algorithms, inputs,
                     reps, seed)
        for s in scenarios
    ]
    return ChaosReport(
        outcomes=outcomes,
        kinds_covered=tuple(sorted(k.value for k in covered)))
