"""Chaos harness: prove the sweep stack survives host failures.

Each :class:`ChaosScenario` runs a *real* mini-sweep (the same
:class:`~repro.core.resilience.ResilientStudy` + pool-executor path the
paper tables use) under one injected host failure mode from
:mod:`repro.core.hostfaults`, then asserts the two invariants the
robustness layer promises:

1. **Full coverage** — every (algorithm, input, variant) cell completes
   with no recorded failures, despite torn trace files, full disks,
   SIGKILLed workers, stalled workers, or a corrupted checkpoint
   generation.
2. **Byte-identical recovery** — ``save_results`` output equals the
   uninjected serial baseline byte for byte.  Recovery must not merely
   finish; it must change *nothing* about the science.

The scenario list covers every :class:`~repro.core.hostfaults.
HostFaultKind` (the harness refuses to report success otherwise) and
ends with a combined flagship run — worker kills + torn trace writes +
an externally corrupted checkpoint generation, resumed to completion —
which is the acceptance bar for the whole robustness layer.  On top of
the per-kind scenarios, :func:`run_serve_scenario` drills the
sweep-as-a-service layer (:mod:`repro.service`): two concurrent clients
against the job server under worker kills and torn trace writes must
get results byte-identical to an uninjected offline sweep, and a
SIGTERM delivered mid-stream must drain within the deadline and leave
a loadable checkpoint.  :func:`run_fleet_scenario` repeats the drill
against the multi-process worker fleet (``--workers 2`` plus the
content-addressed shared result store), adding fleet-worker kills with
redispatch, an externally corrupted store record that must be
quarantined and recomputed, and a second server recovering the rest of
the grid from the store.

Run it via ``python -m repro chaos`` (``--quick`` for the CI-sized
variant) or :func:`run_chaos` directly; ``tools/validate_chaos.py``
wraps the flagship invariant for CI.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.core import hostfaults
from repro.core.hostfaults import HostFaultKind, HostFaultPlan
from repro.core.resilience import ResilientStudy
from repro.errors import StudyError

#: mini-sweep grid: small suite inputs, two racy algorithms — large
#: enough to need the pool and the trace cache, small enough for CI
ALGOS = ("cc", "mis")
INPUTS = ("internet", "USA-road-d.NY")
DEVICE = "titanv"


@dataclass(frozen=True)
class ChaosScenario:
    """One injected host failure mode plus the sweep shape that
    exercises it."""

    name: str
    description: str
    spec: str                          # HostFaultPlan.parse() text
    targets: tuple[str, ...] = ()
    stall_seconds: float = 0.0
    disrupt_generations: int | None = None
    jobs: int = 1
    task_deadline_s: float | None = None
    #: record traces to disk with the plan installed, then re-read them
    #: from a second study (the quarantine/degrade detection path)
    two_phase_traces: bool = False
    #: after a completed checkpointed sweep, externally corrupt the
    #: current checkpoint generation and resume from it
    corrupt_checkpoint: bool = False

    def kinds(self) -> set[HostFaultKind]:
        return {s.kind for s in HostFaultPlan.parse(self.spec).specs}


@dataclass
class ChaosOutcome:
    """Result of one scenario run."""

    scenario: str
    ok: bool
    identical: bool
    coverage: tuple[int, int]
    detail: str

    def describe(self) -> str:
        done, total = self.coverage
        status = "ok" if self.ok else "FAIL"
        ident = "identical" if self.identical else "DIVERGED"
        return (f"{status:4s} {self.scenario:20s} coverage {done}/{total} "
                f"bytes {ident}  {self.detail}")


@dataclass
class ChaosReport:
    """All scenario outcomes of one :func:`run_chaos` invocation."""

    outcomes: list[ChaosOutcome]
    kinds_covered: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def render(self) -> str:
        lines = [o.describe() for o in self.outcomes]
        lines.append(f"fault kinds covered: {', '.join(self.kinds_covered)}")
        lines.append("chaos: all scenarios recovered byte-identically"
                     if self.ok else "chaos: FAILURES above")
        return "\n".join(lines)


def scenario_suite(jobs: int = 4) -> list[ChaosScenario]:
    """The standard scenario list; covers every host fault kind."""
    return [
        ChaosScenario(
            name="torn-trace",
            description="every trace-cache write is truncated mid-write",
            spec="torn=1.0", targets=("trace-*.json",),
            two_phase_traces=True),
        ChaosScenario(
            name="bitflip-trace",
            description="one bit of every stored trace payload flips",
            spec="bitflip=1.0", targets=("trace-*.json",),
            two_phase_traces=True),
        ChaosScenario(
            name="enospc-degrade",
            description="the trace disk is full; cache degrades to "
                        "memory-only",
            spec="enospc=1.0", targets=("trace-*.json",),
            two_phase_traces=True),
        ChaosScenario(
            name="eio-degrade",
            description="the trace disk is dying; writes fail with EIO",
            spec="eio=1.0", targets=("trace-*.json",),
            two_phase_traces=True),
        ChaosScenario(
            name="worker-kill",
            description="every first-generation pool worker is SIGKILLed",
            spec="kill=1.0", disrupt_generations=1, jobs=jobs),
        ChaosScenario(
            name="worker-stall",
            description="first-generation workers hang past the task "
                        "deadline",
            spec="stall=1.0", stall_seconds=20.0, disrupt_generations=1,
            jobs=max(2, min(jobs, 2)), task_deadline_s=1.0),
        ChaosScenario(
            name="checkpoint-fallback",
            description="the current checkpoint generation is corrupted "
                        "after the sweep; resume falls back to .prev",
            spec="torn=0.0", corrupt_checkpoint=True),
        ChaosScenario(
            name="combined",
            description="worker kills + torn trace writes + a corrupted "
                        "checkpoint generation, resumed to completion",
            spec="kill=1.0,torn=0.4", targets=("trace-*.json",),
            disrupt_generations=1, jobs=jobs, corrupt_checkpoint=True),
    ]


def _study(reps: int, checkpoint: Path | None,
           trace_dir: Path | None,
           task_deadline_s: float | None) -> ResilientStudy:
    study = ResilientStudy(
        reps=reps, checkpoint=checkpoint,
        trace_cache=trace_dir if trace_dir is not None else False)
    if task_deadline_s is not None:
        study.pool_task_deadline_s = task_deadline_s
    return study


def _sweep_bytes(study: ResilientStudy, out: Path, device: str,
                 algorithms: list[str], inputs: list[str],
                 jobs: int) -> tuple[bytes, tuple[int, int], int]:
    """Run one sweep, persist its results, and return
    (saved bytes, coverage, failure count)."""
    result = study.sweep(device, algorithms, inputs, jobs=jobs)
    study.save_results(out)
    return out.read_bytes(), result.coverage, len(result.failures)


def _corrupt_file(path: Path) -> None:
    """Externally damage one on-disk generation (torn to half size)."""
    data = path.read_bytes()
    path.write_bytes(data[: max(1, len(data) // 2)])


def run_scenario(scenario: ChaosScenario, baseline: bytes,
                 workdir: Path, device: str, algorithms: list[str],
                 inputs: list[str], reps: int,
                 seed: int) -> ChaosOutcome:
    """Execute one scenario and check both chaos invariants."""
    root = workdir / scenario.name
    root.mkdir(parents=True, exist_ok=True)
    ckpt = root / "sweep.ckpt"
    trace_dir = (root / "traces") if scenario.targets else None
    plan = HostFaultPlan.parse(
        scenario.spec, seed=seed, targets=scenario.targets,
        stall_seconds=scenario.stall_seconds,
        disrupt_generations=scenario.disrupt_generations)
    notes: list[str] = []

    with hostfaults.installed(plan):
        study = _study(reps, ckpt, trace_dir, scenario.task_deadline_s)
        data, coverage, failures = _sweep_bytes(
            study, root / "results.json", device, algorithms, inputs,
            scenario.jobs)
        if scenario.two_phase_traces:
            # phase 2: a fresh study re-reads the (faulted) trace disk —
            # the path where torn/flipped payloads are quarantined and a
            # failing disk trips degraded mode
            second = _study(reps, None, trace_dir,
                            scenario.task_deadline_s)
            data, coverage, failures = _sweep_bytes(
                second, root / "results.json", device, algorithms,
                inputs, scenario.jobs)
            cache = second.trace_cache
            if cache.quarantined:
                notes.append(f"quarantined={cache.quarantined}")
            if cache.degraded:
                notes.append(f"degraded after {cache.disk_errors} "
                             "disk errors")
        if scenario.corrupt_checkpoint:
            # phase 2: damage the current checkpoint generation, then
            # resume — the load must fall back to .prev and the sweep
            # must finish the (at most one) cell the rotation lost
            _corrupt_file(ckpt)
            resumed = _study(reps, ckpt, trace_dir,
                             scenario.task_deadline_s)
            n_res, n_fail = resumed.load_checkpoint()
            data, coverage, failures = _sweep_bytes(
                resumed, root / "results.json", device, algorithms,
                inputs, scenario.jobs)
            notes.append(f"fallbacks={resumed.checkpoint_fallbacks} "
                         f"resumed={n_res}+{n_fail} "
                         f"reran={resumed.cells_executed}")
            if resumed.checkpoint_fallbacks < 1:
                notes.append("EXPECTED a .prev fallback")

    identical = data == baseline
    done, total = coverage
    ok = (identical and failures == 0 and done == total
          and not any(n.startswith("EXPECTED") for n in notes))
    detail = "; ".join([scenario.description] + notes)
    return ChaosOutcome(scenario=scenario.name, ok=ok,
                        identical=identical, coverage=coverage,
                        detail=detail)


# ----------------------------------------------------------------------
# The sweep-as-a-service scenario
# ----------------------------------------------------------------------
def _canonical_payload(payload: dict) -> bytes:
    """Order-independent bytes of a ``save_results`` payload.

    The offline sweep persists records in memo insertion order, the
    server in request-arrival order; the byte-identity invariant is
    about the *science* (the runtimes), so both sides are canonicalized
    to a sorted, key-sorted dump before comparing.
    """
    results = sorted(
        payload.get("results", []),
        key=lambda r: (r.get("algorithm", ""), r.get("input", ""),
                       r.get("device", ""), r.get("variant", "")))
    return json.dumps({"reps": payload.get("reps"),
                       "scale": payload.get("scale"),
                       "results": results}, sort_keys=True).encode()


def _dechunk(body: bytes) -> bytes:
    """Undo HTTP chunked transfer encoding."""
    out = []
    i = 0
    while i < len(body):
        j = body.index(b"\r\n", i)
        size = int(body[i:j], 16)
        if size == 0:
            break
        out.append(body[j + 2:j + 2 + size])
        i = j + 2 + size + 2
    return b"".join(out)


def run_serve_scenario(workdir: Path, device: str,
                       algorithms: list[str], inputs: list[str],
                       reps: int, seed: int,
                       jobs: int = 2) -> ChaosOutcome:
    """Chaos-drill the job server end to end.

    Under worker kills (every first-generation pool worker) plus torn
    trace writes, two concurrent clients request the same study over
    real sockets; the scenario asserts that

    * both clients receive every cell with ``status: ok``,
    * the grid was *executed* exactly once (coalescing + the study
      memo dedupe across clients),
    * the server's accumulated raw runtimes are byte-identical (after
      canonical ordering) to an uninjected, serial, cache-less offline
      sweep of the same cells,
    * a SIGTERM delivered while a third client is mid-stream drains
      within the configured deadline, and
    * the drain leaves a checkpoint a fresh study can load.
    """
    import asyncio
    import os
    import signal as _signal

    from repro.service.server import ServiceConfig, SweepService

    root = workdir / "serve"
    root.mkdir(parents=True, exist_ok=True)
    ckpt = root / "serve.ckpt"
    notes: list[str] = []
    problems: list[str] = []
    n_cells = len(algorithms) * len(inputs)

    # the truth: an uninjected serial offline sweep of the same cells
    offline = ResilientStudy(reps=reps)
    result = offline.sweep(device, algorithms, inputs, jobs=1)
    if result.failures:
        raise StudyError("serve scenario offline baseline failed")
    baseline = _canonical_payload(
        {"reps": offline.reps, "scale": offline.scale,
         "results": offline._result_records()})

    plan = HostFaultPlan.parse(
        "kill=1.0,torn=0.4", seed=seed, targets=("trace-*.json",),
        disrupt_generations=1)
    config = ServiceConfig(
        port=0, reps=reps, retries=0, jobs=jobs,
        trace_dir=str(root / "traces"), checkpoint=str(ckpt),
        drain_deadline_s=60.0)
    body = {"algorithms": list(algorithms), "inputs": list(inputs),
            "device": device, "deadline_s": 300}

    async def client(host: str, port: int, tenant: str) -> list[dict]:
        reader, writer = await asyncio.open_connection(host, port)
        payload = json.dumps(dict(body, tenant=tenant)).encode()
        writer.write((f"POST /v1/study HTTP/1.1\r\nHost: chaos\r\n"
                      f"Content-Length: {len(payload)}\r\n\r\n"
                      ).encode() + payload)
        await writer.drain()
        raw = await reader.read()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        head, _, rest = raw.partition(b"\r\n\r\n")
        if not head.startswith(b"HTTP/1.1 200"):
            raise StudyError(
                f"serve scenario: {tenant} got {head.splitlines()[0]!r}")
        return [json.loads(line)
                for line in _dechunk(rest).splitlines() if line]

    async def fetch_results(host: str, port: int) -> dict:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"GET /v1/results HTTP/1.1\r\nHost: chaos\r\n"
                     b"Content-Length: 0\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        return json.loads(raw.partition(b"\r\n\r\n")[2])

    async def drive() -> tuple[bytes, tuple[int, int]]:
        service = SweepService(config)
        await service.start()
        host, port = service.address
        loop = asyncio.get_running_loop()

        # two concurrent clients, same cold study: the coalescing path
        records_a, records_b = await asyncio.gather(
            client(host, port, "alice"), client(host, port, "bob"))
        covered = n_cells
        for tenant, records in (("alice", records_a), ("bob", records_b)):
            cells = [r for r in records if "cell" in r]
            good = [r for r in cells if r.get("status") == "ok"]
            covered = min(covered, len(good))
            if len(cells) != n_cells or len(good) != n_cells:
                problems.append(
                    f"{tenant} got {len(good)} ok of {len(cells)} "
                    f"cells, wanted {n_cells}")
        # the pool path executes each cell's two variants as separate
        # records; two clients must still cost exactly one grid
        executed = service.executor.study.cells_executed
        if executed != 2 * n_cells:
            problems.append(f"executed {executed} variant records for "
                            f"two clients, expected {2 * n_cells}")
        notes.append(f"coalesced={service.scheduler.coalesced}")

        server_payload = await fetch_results(host, port)

        # third client mid-stream, then SIGTERM: the drain must let the
        # stream finish and still beat the deadline
        third = asyncio.create_task(client(host, port, "carol"))
        await asyncio.sleep(0.05)
        drain_started = loop.time()
        os.kill(os.getpid(), _signal.SIGTERM)
        try:
            await asyncio.wait_for(
                service.wait_drained(),
                timeout=config.drain_deadline_s + 15.0)
        except asyncio.TimeoutError:
            problems.append("drain never completed")
        drain_s = loop.time() - drain_started
        if drain_s > config.drain_deadline_s:
            problems.append(f"drain took {drain_s:.1f}s, over the "
                            f"{config.drain_deadline_s:.0f}s deadline")
        notes.append(f"drained in {drain_s:.2f}s")
        try:
            records_c = await third
            ok_c = sum(1 for r in records_c
                       if "cell" in r and r.get("status") == "ok")
            notes.append(f"mid-drain client finished {ok_c}/{n_cells}")
        except (StudyError, ConnectionError, OSError, EOFError) as exc:
            notes.append(f"mid-drain client cut off ({exc})")
        return _canonical_payload(server_payload), (covered, n_cells)

    with hostfaults.installed(plan):
        server_bytes, coverage = asyncio.run(drive())

    if not ckpt.exists():
        problems.append("drain left no checkpoint")
    else:
        loader = ResilientStudy(reps=reps, checkpoint=ckpt)
        n_res, n_fail = loader.load_checkpoint()
        notes.append(f"checkpoint loads {n_res} results")
        if n_res < 2 * n_cells or n_fail:
            problems.append(
                f"checkpoint resumed {n_res} results / {n_fail} "
                f"failures for a {n_cells}-cell grid")

    identical = server_bytes == baseline
    if not identical:
        problems.append("server results diverge from offline sweep")
    detail = "; ".join(
        ["worker kills + torn trace writes under 2 concurrent "
         "clients, SIGTERM drain mid-stream"] + notes + problems)
    return ChaosOutcome(scenario="serve", ok=not problems and identical,
                        identical=identical, coverage=coverage,
                        detail=detail)


# ----------------------------------------------------------------------
# The fleet scenario
# ----------------------------------------------------------------------
def run_fleet_scenario(workdir: Path, device: str,
                       algorithms: list[str], inputs: list[str],
                       reps: int, seed: int) -> ChaosOutcome:
    """Chaos-drill the multi-process worker fleet end to end.

    Phase 1 runs a two-worker fleet server under worker kills (every
    first-incarnation fleet worker dies on its first dispatched cell)
    plus torn trace writes, with a shared result store and a
    checkpoint; two concurrent clients must get every cell ``ok``,
    each lost cell must be redispatched exactly once (so the grid is
    still *executed* exactly once), and the accumulated results must
    be byte-identical to an uninjected serial offline sweep.  A
    SIGTERM delivered while a third client is mid-stream must drain
    within the deadline and leave a loadable checkpoint.

    Phase 2 externally corrupts one published store record and starts
    a *fresh* fleet server over the same store directory: the corrupt
    record must be CRC-quarantined and recomputed, every other cell
    must be served from the store, and the results must again be
    byte-identical.
    """
    import asyncio
    import os
    import signal as _signal

    from repro.service.server import ServiceConfig, SweepService

    root = workdir / "fleet"
    root.mkdir(parents=True, exist_ok=True)
    ckpt = root / "fleet.ckpt"
    store_dir = root / "store"
    notes: list[str] = []
    problems: list[str] = []
    n_cells = len(algorithms) * len(inputs)
    body = {"algorithms": list(algorithms), "inputs": list(inputs),
            "device": device, "deadline_s": 300}

    # the truth: an uninjected serial offline sweep of the same cells
    offline = ResilientStudy(reps=reps)
    result = offline.sweep(device, algorithms, inputs, jobs=1)
    if result.failures:
        raise StudyError("fleet scenario offline baseline failed")
    baseline = _canonical_payload(
        {"reps": offline.reps, "scale": offline.scale,
         "results": offline._result_records()})

    async def client(host: str, port: int, tenant: str) -> list[dict]:
        reader, writer = await asyncio.open_connection(host, port)
        payload = json.dumps(dict(body, tenant=tenant)).encode()
        writer.write((f"POST /v1/study HTTP/1.1\r\nHost: chaos\r\n"
                      f"Content-Length: {len(payload)}\r\n\r\n"
                      ).encode() + payload)
        await writer.drain()
        raw = await reader.read()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        head, _, rest = raw.partition(b"\r\n\r\n")
        if not head.startswith(b"HTTP/1.1 200"):
            raise StudyError(
                f"fleet scenario: {tenant} got {head.splitlines()[0]!r}")
        return [json.loads(line)
                for line in _dechunk(rest).splitlines() if line]

    async def get_json(host: str, port: int, path: str) -> dict:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write((f"GET {path} HTTP/1.1\r\nHost: chaos\r\n"
                      "Content-Length: 0\r\n\r\n").encode())
        await writer.drain()
        raw = await reader.read()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        return json.loads(raw.partition(b"\r\n\r\n")[2])

    def check_clients(tag: str, *client_records: tuple[str, list[dict]]
                      ) -> int:
        covered = n_cells
        for tenant, records in client_records:
            cells = [r for r in records if "cell" in r]
            good = [r for r in cells if r.get("status") == "ok"]
            covered = min(covered, len(good))
            if len(cells) != n_cells or len(good) != n_cells:
                problems.append(
                    f"{tag}: {tenant} got {len(good)} ok of "
                    f"{len(cells)} cells, wanted {n_cells}")
        return covered

    # ---- phase 1: kills + torn traces, SIGTERM mid-drain -------------
    async def drive_injected() -> tuple[bytes, int]:
        config = ServiceConfig(
            port=0, reps=reps, retries=0, workers=2,
            store_dir=str(store_dir), trace_dir=str(root / "traces"),
            checkpoint=str(ckpt), fleet_heartbeat_s=0.1,
            drain_deadline_s=60.0)
        service = SweepService(config)
        await service.start()
        host, port = service.address
        loop = asyncio.get_running_loop()

        records_a, records_b = await asyncio.gather(
            client(host, port, "alice"), client(host, port, "bob"))
        covered = check_clients("phase1", ("alice", records_a),
                                ("bob", records_b))
        executed = service.executor.study.cells_executed
        if executed != 2 * n_cells:
            problems.append(
                f"phase1: executed {executed} variant records, "
                f"expected {2 * n_cells} (each lost cell redispatched "
                "at most once)")
        status = service.executor.fleet_status()
        notes.append(f"respawns={status['respawns']} "
                     f"redispatches={status['redispatches']}")
        if status["respawns"] < 1 or status["redispatches"] < 1:
            problems.append("phase1: the kill plan never cost a worker "
                            "(scenario exercised nothing)")
        server_payload = await get_json(host, port, "/v1/results")

        third = asyncio.create_task(client(host, port, "carol"))
        await asyncio.sleep(0.05)
        drain_started = loop.time()
        os.kill(os.getpid(), _signal.SIGTERM)
        try:
            await asyncio.wait_for(
                service.wait_drained(),
                timeout=config.drain_deadline_s + 15.0)
        except asyncio.TimeoutError:
            problems.append("phase1: drain never completed")
        drain_s = loop.time() - drain_started
        if drain_s > config.drain_deadline_s:
            problems.append(f"phase1: drain took {drain_s:.1f}s, over "
                            f"the {config.drain_deadline_s:.0f}s "
                            "deadline")
        notes.append(f"drained in {drain_s:.2f}s")
        try:
            records_c = await third
            ok_c = sum(1 for r in records_c
                       if "cell" in r and r.get("status") == "ok")
            notes.append(f"mid-drain client finished {ok_c}/{n_cells}")
        except (StudyError, ConnectionError, OSError, EOFError) as exc:
            notes.append(f"mid-drain client cut off ({exc})")
        return _canonical_payload(server_payload), covered

    plan = HostFaultPlan.parse(
        "kill=1.0,torn=0.4", seed=seed, targets=("trace-*.json",),
        disrupt_generations=1)
    with hostfaults.installed(plan):
        server_bytes, covered = asyncio.run(drive_injected())
    if server_bytes != baseline:
        problems.append("phase1: fleet results diverge from the "
                        "offline sweep")

    if not ckpt.exists():
        problems.append("phase1: drain left no checkpoint")
    else:
        loader = ResilientStudy(reps=reps, checkpoint=ckpt)
        n_res, n_fail = loader.load_checkpoint()
        notes.append(f"checkpoint loads {n_res} results")
        if n_res < 2 * n_cells or n_fail:
            problems.append(
                f"phase1: checkpoint resumed {n_res} results / "
                f"{n_fail} failures for a {n_cells}-cell grid")

    # ---- phase 2: corrupt one store record, recover from the rest ----
    published = sorted(store_dir.glob("cell-*.json"))
    if len(published) != n_cells:
        problems.append(f"phase2: store holds {len(published)} records "
                        f"for a {n_cells}-cell grid")
    if published:
        _corrupt_file(published[0])

    async def drive_recovery() -> bytes:
        config = ServiceConfig(
            port=0, reps=reps, retries=0, workers=2,
            store_dir=str(store_dir), fleet_heartbeat_s=0.1,
            drain_deadline_s=60.0)
        service = SweepService(config)
        await service.start()
        host, port = service.address
        records = await client(host, port, "dana")
        check_clients("phase2", ("dana", records))
        store = service.executor.store
        notes.append(f"store hits={store.hits} "
                     f"quarantined={store.quarantined}")
        if store.quarantined < 1:
            problems.append("phase2: the corrupt record was never "
                            "quarantined")
        if store.hits < n_cells - 1:
            problems.append(
                f"phase2: only {store.hits} store hits for "
                f"{n_cells - 1} intact records")
        executed = service.executor.study.cells_executed
        if executed > 2:
            problems.append(
                f"phase2: recomputed {executed} variant records; only "
                "the corrupt cell should have run")
        corrupt = list(store_dir.glob("*.corrupt"))
        if not corrupt:
            problems.append("phase2: no *.corrupt quarantine file")
        server_payload = await get_json(host, port, "/v1/results")
        await service.aclose()
        return _canonical_payload(server_payload)

    recovered_bytes = asyncio.run(drive_recovery())
    if recovered_bytes != baseline:
        problems.append("phase2: recovered results diverge from the "
                        "offline sweep")

    identical = (server_bytes == baseline
                 and recovered_bytes == baseline)
    detail = "; ".join(
        ["2-worker fleet under worker kills + torn traces, then store "
         "corruption recovery"] + notes + problems)
    return ChaosOutcome(scenario="fleet", ok=not problems and identical,
                        identical=identical, coverage=(covered, n_cells),
                        detail=detail)


def run_chaos(device: str = DEVICE, inputs: list[str] | None = None,
              reps: int = 2, jobs: int = 4, seed: int = 0,
              quick: bool = False,
              workdir: str | Path | None = None) -> ChaosReport:
    """Run the full chaos suite and return a :class:`ChaosReport`.

    ``quick`` shrinks the grid (one input, one repetition) for CI; the
    scenario list — and therefore the fault kinds exercised — is the
    same in both modes.  The harness self-checks that the suite covers
    every :class:`~repro.core.hostfaults.HostFaultKind` so a future
    kind cannot silently ship untested.
    """
    algorithms = list(ALGOS)
    if inputs is None:
        inputs = list(INPUTS[:1] if quick else INPUTS)
    if quick:
        reps = 1
    workdir = Path(workdir) if workdir is not None else Path(
        tempfile.mkdtemp(prefix="repro-chaos-"))
    workdir.mkdir(parents=True, exist_ok=True)

    scenarios = scenario_suite(jobs=jobs)
    covered = set()
    for s in scenarios:
        covered |= s.kinds()
    missing = set(HostFaultKind) - covered
    if missing:
        raise StudyError(
            "chaos suite does not cover host fault kind(s): "
            + ", ".join(sorted(k.value for k in missing)))

    # the truth the injected runs must reproduce byte for byte: an
    # uninjected, serial, cache-less sweep
    base_study = _study(reps, None, None, None)
    baseline, coverage, failures = _sweep_bytes(
        base_study, workdir / "baseline.json", device, algorithms,
        inputs, jobs=1)
    if failures or coverage[0] != coverage[1]:
        raise StudyError(
            "chaos baseline sweep failed without any injection — fix "
            "the sweep before measuring its resilience")

    outcomes = [
        run_scenario(s, baseline, workdir, device, algorithms, inputs,
                     reps, seed)
        for s in scenarios
    ]
    outcomes.append(run_serve_scenario(
        workdir, device, algorithms, inputs, reps, seed,
        jobs=max(2, min(jobs, 4))))
    outcomes.append(run_fleet_scenario(
        workdir, device, algorithms, inputs, reps, seed))
    return ChaosReport(
        outcomes=outcomes,
        kinds_covered=tuple(sorted(k.value for k in covered)))
