"""The paper's primary contribution as a library.

* :mod:`repro.core.transform` — the race-removal transform: an access
  *plan* names every shared-memory access site of an algorithm with its
  baseline access kind; the transform rewrites the plan so every racy
  site becomes a relaxed atomic (Section IV).
* :mod:`repro.core.variants` — the BASELINE / RACE_FREE variant axis and
  the registry of algorithm implementations.
* :mod:`repro.core.study` — the experimental methodology of Section V:
  run variant x input x device for nine repetitions, take medians,
  compute speedups.
* :mod:`repro.core.report` — speedup tables (Tables IV-VIII), geometric
  means (Fig. 6), and property correlations (Table IX).
* :mod:`repro.core.resilience` — the resilient sweep layer: per-cell
  fault isolation, budgets, retries, and checkpoint/resume.
* :mod:`repro.core.hostfaults` — deterministic injection of *host*
  failures (torn writes, full disks, killed/stalled workers).
* :mod:`repro.core.chaos` — the harness asserting byte-identical
  recovery from each injected host failure.
"""

from repro.core.variants import Variant, AlgorithmInfo, get_algorithm, list_algorithms
from repro.core.transform import AccessSite, AccessPlan, remove_races
from repro.core.study import Study, RunResult, SpeedupCell
from repro.core.hostfaults import HostFaultKind, HostFaultPlan, HostFaultSpec
from repro.core.chaos import ChaosReport, ChaosScenario, run_chaos
from repro.core.resilience import (
    CellBudget,
    CellFailure,
    ResilientStudy,
    SweepResult,
    run_guarded,
)
from repro.core.report import (
    correlation_table,
    geomean_summary,
    resilient_speedup_table,
    speedup_table,
)

__all__ = [
    "Variant",
    "AlgorithmInfo",
    "get_algorithm",
    "list_algorithms",
    "AccessSite",
    "AccessPlan",
    "remove_races",
    "Study",
    "RunResult",
    "SpeedupCell",
    "ResilientStudy",
    "CellBudget",
    "CellFailure",
    "SweepResult",
    "run_guarded",
    "HostFaultKind",
    "HostFaultPlan",
    "HostFaultSpec",
    "ChaosReport",
    "ChaosScenario",
    "run_chaos",
    "speedup_table",
    "resilient_speedup_table",
    "geomean_summary",
    "correlation_table",
]
