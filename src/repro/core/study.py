"""The experimental methodology of Section V.

A :class:`Study` runs (algorithm, input, device, variant) configurations
``reps`` times (the paper uses nine), takes the *median* simulated
runtime, and derives speedups as ``baseline_median / racefree_median`` —
a value above 1 means the race-free code is faster.

Repetitions differ in their randomization seed (vertex priorities,
tie-breaks, schedule-dependent staleness subsets), which is the
simulator's analog of run-to-run hardware variance.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.variants import AlgorithmInfo, Variant, get_algorithm
from repro.errors import StudyError
from repro.gpu.device import DeviceSpec, get_device
from repro.graphs.csr import CSRGraph
from repro.graphs.suite import load_suite_graph, weighted_graph
from repro.perf.engine import PerfRun, run_algorithm
from repro.perf.trace import TraceCache
from repro.telemetry.spans import get_spans
from repro.utils.atomicio import atomic_write_text
from repro.utils.stats import median, relative_deviation

TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"
"""Environment variable naming the on-disk trace-cache directory used
by studies that were not given an explicit cache."""


@dataclass
class RunResult:
    """Median-of-reps runtime of one (algo, input, device, variant)."""

    algorithm: str
    input_name: str
    device_key: str
    variant: Variant
    runtimes_ms: list[float]
    #: outputs/stats of the final repetition; None when the result was
    #: re-loaded from a saved log (outputs are not persisted)
    last_run: PerfRun | None

    @property
    def median_ms(self) -> float:
        return median(self.runtimes_ms)

    @property
    def relative_deviation(self) -> float:
        return relative_deviation(self.runtimes_ms)


@dataclass
class SpeedupCell:
    """One cell of Tables IV-VIII."""

    algorithm: str
    input_name: str
    device_key: str
    baseline_ms: float
    racefree_ms: float

    @property
    def speedup(self) -> float:
        """baseline runtime / race-free runtime (>1: race-free faster)."""
        if self.racefree_ms <= 0:
            raise StudyError("race-free runtime must be positive")
        return self.baseline_ms / self.racefree_ms


class Study:
    """Runs the paper's comparison on the simulated devices.

    Parameters
    ----------
    reps:
        Runs per configuration (paper: 9).
    scale:
        Input scale factor forwarded to the suite loader.
    validate:
        Verify every output against the reference checkers (slow; used
        by the test-suite, off for the big sweeps).
    trace_cache:
        The record/replay cache (see :mod:`repro.perf.trace`).  By
        default each study gets its own in-memory cache, with an
        on-disk layer when ``REPRO_TRACE_CACHE`` names a directory.
        Pass a :class:`~repro.perf.trace.TraceCache`, a directory path
        (enables the disk layer there), or ``False`` to disable
        caching entirely (every repetition re-executes the vectorized
        algorithm — the pre-replay engine).
    jobs:
        Default worker count for :meth:`speedup_table` (and
        :meth:`~repro.core.resilience.ResilientStudy.sweep`); ``None``
        reads ``REPRO_JOBS``, 1 means serial.
    memory_model:
        Price every run under this consistency model
        (:mod:`repro.memmodel`): shared atomic sites are lifted to the
        model's order floor before recording, e.g. ``"ptx:acq_rel"``
        prices the acquire/release world.  None keeps the paper's
        relaxed default.  Model-priced sweeps run serially (the
        pool-worker protocol does not carry the model).
    """

    #: pool-worker respawn budget for parallel sweeps (None reads
    #: ``REPRO_POOL_RESPAWNS``, default 3) — see
    #: :func:`repro.core.parallel.execute_tasks`
    pool_respawn_budget: int | None = None
    #: per-task wall-clock deadline in seconds for pool workers (None
    #: reads ``REPRO_TASK_DEADLINE_S``; unset means wait forever)
    pool_task_deadline_s: float | None = None

    def __init__(self, reps: int = 9, scale: float = 1.0,
                 validate: bool = False,
                 trace_cache: TraceCache | str | Path | bool | None = None,
                 jobs: int | None = None,
                 memory_model=None) -> None:
        from repro.core.parallel import resolve_jobs

        if reps < 1:
            raise StudyError(f"reps must be >= 1, got {reps}")
        self.reps = reps
        self.scale = scale
        self.validate = validate
        if memory_model is not None:
            from repro.memmodel.models import resolve_model

            memory_model = resolve_model(memory_model)
        self.memory_model = memory_model
        if trace_cache is None or trace_cache is True:
            trace_cache = TraceCache(
                disk_dir=os.environ.get(TRACE_CACHE_ENV) or None)
        elif trace_cache is False:
            trace_cache = None
        elif isinstance(trace_cache, (str, Path)):
            trace_cache = TraceCache(disk_dir=trace_cache)
        self.trace_cache: TraceCache | None = trace_cache
        self.jobs = resolve_jobs(jobs)
        self._results: dict[tuple, RunResult] = {}
        #: content fingerprints of graphs seen per input name, so two
        #: different graphs cannot silently share one memo entry
        self._graph_fps: dict[str, str] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _rep_seed(rep: int, attempt: int = 0) -> int:
        """Per-repetition randomization seed (the simulator's analog of
        run-to-run variance).  ``attempt > 0`` — used by the resilient
        retry path — shifts to a fresh schedule-seed family; attempt 0
        reproduces the historical seeds exactly."""
        return 1000 * rep + 7 + 7919 * attempt

    def _note_fingerprint(self, name: str, graph: CSRGraph) -> None:
        """Record ``graph``'s content for ``name``; reject a clash.

        A :class:`CSRGraph` passed directly whose ``.name`` collides
        with a different graph (a suite input, or an earlier passed
        graph) would otherwise silently reuse or overwrite the other's
        cached result.
        """
        fp = graph.fingerprint()
        prev = self._graph_fps.get(name)
        if prev is not None and prev != fp:
            raise StudyError(
                f"graph name {name!r} already used in this study for "
                "different content; rename the graph (results are "
                "memoized per input name)"
            )
        self._graph_fps[name] = fp

    def _memo_key(self, algorithm: str, graph_or_name, device: str,
                  variant: Variant) -> tuple[tuple, str]:
        """(memo key, input name) — with the name-clash check applied
        for directly-passed graphs *before* any memo lookup."""
        if isinstance(graph_or_name, CSRGraph):
            name = graph_or_name.name
            self._note_fingerprint(name, graph_or_name)
        else:
            name = graph_or_name
        return (algorithm, name, device, variant), name

    def _prepare_graph(self, algo: AlgorithmInfo,
                       graph_or_name) -> CSRGraph:
        if isinstance(graph_or_name, CSRGraph):
            graph = graph_or_name
        else:
            graph = load_suite_graph(graph_or_name, scale=self.scale)
            self._note_fingerprint(graph_or_name, graph)
        if algo.needs_weights and not graph.has_weights:
            # process-wide cache: every study (and every repetition of
            # every device) shares one weighted copy per graph content
            graph = weighted_graph(graph, seed=12345)
        return graph

    def run(self, algorithm: str, graph_or_name, device: str,
            variant: Variant) -> RunResult:
        """Run one configuration (memoized within the study)."""
        key, name = self._memo_key(algorithm, graph_or_name, device, variant)
        if key in self._results:
            return self._results[key]

        algo = get_algorithm(algorithm)
        spec = get_device(device)
        graph = self._prepare_graph(algo, graph_or_name)

        runtimes: list[float] = []
        last: PerfRun | None = None
        with get_spans().span("study.run", algorithm=algorithm,
                              input=name, device=device,
                              variant=variant.value, reps=self.reps):
            for rep in range(self.reps):
                run = run_algorithm(algo, graph, spec, variant,
                                    seed=self._rep_seed(rep),
                                    trace_cache=self.trace_cache,
                                    need_output=self.validate,
                                    memory_model=self.memory_model)
                # every repetition is validated: reps differ in their
                # randomization seed, so a corrupt rep 3 would be
                # invisible if only the final repetition were checked
                if self.validate:
                    self._validate(algo, graph, run)
                runtimes.append(run.runtime_ms)
                last = run
        result = RunResult(algorithm, name, device, variant, runtimes, last)
        self._results[key] = result
        return result

    def speedup(self, algorithm: str, graph_or_name,
                device: str) -> SpeedupCell:
        """Baseline-vs-race-free speedup for one configuration."""
        algo = get_algorithm(algorithm)
        if not algo.has_races:
            raise StudyError(
                f"{algorithm} has no data races (Section IV.A); the paper "
                "does not measure its race-free speedup"
            )
        base = self.run(algorithm, graph_or_name, device, Variant.BASELINE)
        free = self.run(algorithm, graph_or_name, device, Variant.RACE_FREE)
        return SpeedupCell(
            algorithm=algorithm,
            input_name=base.input_name,
            device_key=device,
            baseline_ms=base.median_ms,
            racefree_ms=free.median_ms,
        )

    def speedup_table(self, device: str, algorithms: list[str],
                      inputs: list[str],
                      jobs: int | None = None) -> list[SpeedupCell]:
        """All cells of one of Tables IV-VIII.

        ``jobs > 1`` executes the missing cells on a process pool
        first (see :mod:`repro.core.parallel`), then assembles the
        table from the memo — the cells, their order, and any
        subsequently saved results are bit-identical to the serial
        path.
        """
        jobs = jobs if jobs is not None else self.jobs
        if self.memory_model is not None:
            jobs = 1  # worker protocol doesn't carry the model; stay serial
        with get_spans().span("study.sweep", device=device, jobs=jobs,
                              cells=len(algorithms) * len(inputs)):
            if jobs > 1:
                self._parallel_prefetch(device, algorithms, inputs, jobs)
            return [
                self.speedup(a, name, device)
                for name in inputs
                for a in algorithms
            ]

    # ------------------------------------------------------------------
    # Parallel execution (see repro.core.parallel)
    # ------------------------------------------------------------------
    def _cell_done(self, key: tuple) -> bool:
        """Whether the sweep already has an outcome for ``key``."""
        return key in self._results

    def _worker_config(self):
        """The picklable policy a pool worker rebuilds this study from."""
        from repro.core.parallel import WorkerConfig

        trace_dir = (str(self.trace_cache.disk_dir)
                     if self.trace_cache is not None
                     and self.trace_cache.disk_dir is not None else None)
        from repro.core import hostfaults
        from repro.telemetry.metrics import telemetry_enabled

        return WorkerConfig(resilient=False, reps=self.reps,
                            scale=self.scale, validate=self.validate,
                            trace_dir=trace_dir,
                            telemetry=telemetry_enabled(),
                            hostfaults=hostfaults.active_plan())

    def _merge_telemetry_record(self, record: dict) -> None:
        """Fold one worker's shipped metric/span deltas into the
        process-wide registry (records arrive in submission order, so
        the merged write sequence equals the serial one)."""
        from repro.telemetry.metrics import get_registry

        get_registry().merge(record["snapshot"])
        get_spans().merge(record.get("spans", ()),
                          worker=record.get("worker"))

    def _merge_parallel_record(self, record: dict) -> None:
        """Fold one worker record into the memo (submission order)."""
        if record.get("kind") == "telemetry":
            self._merge_telemetry_record(record)
            return
        variant = Variant(record["variant"])
        key = (record["algorithm"], record["input"], record["device"],
               variant)
        if key in self._results:
            return
        self._results[key] = RunResult(
            record["algorithm"], record["input"], record["device"],
            variant, [float(x) for x in record["runtimes_ms"]],
            last_run=None)

    def _parallel_prefetch(self, device: str, algorithms: list[str],
                           inputs: list[str], jobs: int) -> None:
        """Execute every missing (algorithm, input) pair on a pool.

        Tasks are built — and their records merged — in the exact
        order the serial sweep would have executed them, which is what
        keeps the memo's insertion order (and therefore
        :meth:`save_results` output) byte-identical.
        """
        from repro.core.parallel import CellTask, execute_tasks

        variants = (Variant.BASELINE, Variant.RACE_FREE)
        tasks = []
        for graph_or_name in inputs:
            name = (graph_or_name.name
                    if isinstance(graph_or_name, CSRGraph)
                    else graph_or_name)
            for a in algorithms:
                pending = tuple(
                    v.value for v in variants
                    if not self._cell_done((a, name, device, v)))
                if pending:
                    tasks.append(CellTask(a, graph_or_name, device,
                                          pending))
        execute_tasks(self._worker_config(), tasks, jobs,
                      self._merge_parallel_record,
                      respawn_budget=self.pool_respawn_budget,
                      task_deadline_s=self.pool_task_deadline_s)

    # ------------------------------------------------------------------
    # Result persistence (the artifact's ./results/ raw-runtime logs)
    # ------------------------------------------------------------------
    def _result_records(self) -> list[dict]:
        return [
            {
                "algorithm": r.algorithm,
                "input": r.input_name,
                "device": r.device_key,
                "variant": r.variant.value,
                "runtimes_ms": r.runtimes_ms,
            }
            for r in self._results.values()
        ]

    def save_results(self, path: str | Path) -> None:
        """Write every memoized runtime to a JSON log.

        The analog of the paper artifact's ``./results/`` directory:
        raw runtimes per (algorithm, input, device, variant), so table
        generation can be re-done without re-running the simulations.
        The write is crash-safe (temp file + atomic rename): a crash
        mid-save cannot leave a truncated log behind.
        """
        payload = {"reps": self.reps, "scale": self.scale,
                   "results": self._result_records()}
        atomic_write_text(path, json.dumps(payload, indent=1))

    def _load_payload(self, path: str | Path) -> dict:
        """Parse and protocol-check a saved log; StudyError on damage."""
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise StudyError(
                f"corrupt or partial results file {path}: {exc}"
            ) from exc
        if not isinstance(payload, dict) or "results" not in payload:
            raise StudyError(f"{path} is not a study results file")
        if payload.get("reps") != self.reps or payload.get("scale") != self.scale:
            raise StudyError(
                "saved results were produced with a different reps/scale "
                f"({payload.get('reps')}/{payload.get('scale')} vs "
                f"{self.reps}/{self.scale})"
            )
        return payload

    def load_results(self, path: str | Path) -> int:
        """Pre-populate the memo from a saved log; returns the number of
        configurations loaded.  Loaded entries carry no ``last_run``
        (outputs are not persisted), so ``validate`` does not apply.
        Raises :class:`~repro.errors.StudyError` (not a bare JSON error)
        on corrupt or truncated files.  All-or-nothing: records are
        staged into a local map and committed to the memo only after
        every one has parsed, so a malformed record midway through the
        file cannot leave the study half-loaded."""
        payload = self._load_payload(path)
        staged: dict[tuple, RunResult] = {}
        try:
            for rec in payload["results"]:
                variant = Variant(rec["variant"])
                key = (rec["algorithm"], rec["input"], rec["device"], variant)
                staged[key] = RunResult(
                    rec["algorithm"], rec["input"], rec["device"], variant,
                    [float(x) for x in rec["runtimes_ms"]], last_run=None)
        except (KeyError, TypeError, ValueError) as exc:
            raise StudyError(
                f"malformed record in results file {path}: {exc!r}"
            ) from exc
        self._results.update(staged)
        return len(staged)

    # ------------------------------------------------------------------
    def _validate(self, algo: AlgorithmInfo, graph: CSRGraph,
                  run: PerfRun) -> None:
        from repro.algorithms import verify

        out = run.output
        if algo.key == "cc":
            verify.check_components(graph, out["labels"])
        elif algo.key == "gc":
            verify.check_coloring(graph, out["colors"])
        elif algo.key == "mis":
            verify.check_mis(graph, out["in_set"])
        elif algo.key == "mst":
            verify.check_mst(graph, out["in_mst"])
        elif algo.key == "scc":
            verify.check_scc(graph, out["labels"])
        elif algo.key == "apsp":
            verify.check_apsp(graph, out["dist"])


def paper_properties(name: str, scale: float = 1.0) -> tuple[int, int, float]:
    """(edge count, vertex count, average degree) of a suite input —
    the Table IX correlates; taken from the *scaled* graph actually run.

    ``scale`` must match the study that produced the speedups (a
    ``REPRO_SCALE != 1`` sweep correlates against differently sized
    graphs than the default suite).  Served from the shared suite
    cache, so repeated correlation passes never rebuild CSR arrays.
    """
    graph = load_suite_graph(name, scale=scale)
    return (graph.num_edges, graph.num_vertices,
            graph.num_edges / max(1, graph.num_vertices))
