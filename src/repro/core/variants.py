"""The baseline / race-free variant axis and the algorithm registry."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.errors import StudyError


class Variant(enum.Enum):
    """Which version of a code runs: the original with its "benign"
    races, or the validated race-free conversion."""

    BASELINE = "baseline"
    RACE_FREE = "racefree"


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registry entry for one of the six studied codes.

    ``perf_runner(graph, device, variant, seed)`` returns a
    :class:`repro.perf.engine.PerfRun`; the SIMT kernels are reachable
    through the algorithm's module for race checking on small inputs.
    """

    key: str
    full_name: str
    directed: bool
    needs_weights: bool
    has_races: bool  # APSP is regular and race-free by construction
    perf_runner: Callable
    module: str


_REGISTRY: dict[str, AlgorithmInfo] = {}


def register_algorithm(info: AlgorithmInfo) -> None:
    if info.key in _REGISTRY:
        raise StudyError(f"algorithm {info.key!r} already registered")
    _REGISTRY[info.key] = info


def get_algorithm(key: str) -> AlgorithmInfo:
    _ensure_loaded()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise StudyError(
            f"unknown algorithm {key!r}; known: {sorted(_REGISTRY)}"
        ) from None


def list_algorithms() -> list[AlgorithmInfo]:
    _ensure_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def _ensure_loaded() -> None:
    """Import the algorithm modules so they self-register."""
    if _REGISTRY:
        return
    from repro.algorithms import apsp, cc, gc, mis, mst, scc  # noqa: F401
