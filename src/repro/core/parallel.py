"""Parallel sweep execution: fan cells out over a process pool.

The paper's evaluation is a (algorithm x input x device x variant x
reps) grid of *independent* cells — every simulated runtime depends
only on its own (algorithm, graph, variant, seed, staleness class) and
the device constants, never on other cells.  That makes the sweep
embarrassingly parallel, and this module is the executor:
:meth:`repro.core.study.Study.speedup_table` and
:meth:`repro.core.resilience.ResilientStudy.sweep` build one
:class:`CellTask` per missing (algorithm, input) pair and hand them to
:func:`execute_tasks`, which runs them on a ``ProcessPoolExecutor`` and
feeds picklable result records back to the study **in submission
order** — so the memo (and therefore ``save_results`` output, speedup
tables, and checkpoints) is byte-identical to the serial path.

Each worker process owns a private study configured from the parent's
:class:`WorkerConfig` (same reps/scale/validate/retry policy, same
fault plan seed) plus a :class:`~repro.perf.trace.TraceCache` pointed
at the parent's on-disk trace directory when one is configured — that
shared disk layer is how workers pricing different devices reuse one
functional execution per staleness class.

Knobs: ``Study(jobs=N)`` / ``speedup_table(..., jobs=N)`` /
``repro sweep --jobs N``, all defaulting to the ``REPRO_JOBS``
environment variable (unset = 1 = serial, no pool is ever created).
"""

from __future__ import annotations

import concurrent.futures
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable

from repro.core.variants import Variant
from repro.errors import StudyError, WorkerTaskError

JOBS_ENV = "REPRO_JOBS"

RESPAWN_ENV = "REPRO_POOL_RESPAWNS"
"""How many times :func:`execute_tasks` may rebuild a broken pool
before giving up (default 3).  Each SIGKILLed or stalled-past-deadline
worker generation consumes one unit."""

DEADLINE_ENV = "REPRO_TASK_DEADLINE_S"
"""Optional per-task wall-clock deadline (seconds) for pool workers; a
task that does not return in time has its worker generation torn down
and is resubmitted.  Unset means wait forever (stalls hang, as before).
"""


def _resolve_respawns(respawn_budget: int | None) -> int:
    if respawn_budget is None:
        raw = os.environ.get(RESPAWN_ENV, "").strip()
        if not raw:
            return 3
        try:
            respawn_budget = int(raw)
        except ValueError:
            raise StudyError(
                f"{RESPAWN_ENV} must be an integer, got {raw!r}"
            ) from None
    respawn_budget = int(respawn_budget)
    if respawn_budget < 0:
        raise StudyError(
            f"respawn budget must be >= 0, got {respawn_budget}")
    return respawn_budget


def _resolve_deadline(task_deadline_s: float | None) -> float | None:
    if task_deadline_s is None:
        raw = os.environ.get(DEADLINE_ENV, "").strip()
        if not raw:
            return None
        try:
            task_deadline_s = float(raw)
        except ValueError:
            raise StudyError(
                f"{DEADLINE_ENV} must be a number, got {raw!r}"
            ) from None
    task_deadline_s = float(task_deadline_s)
    if task_deadline_s <= 0:
        raise StudyError(
            f"task deadline must be > 0, got {task_deadline_s}")
    return task_deadline_s


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit argument, else ``REPRO_JOBS``,
    else 1 (serial)."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise StudyError(
                f"{JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    jobs = int(jobs)
    if jobs < 1:
        raise StudyError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a pool worker needs to rebuild the parent's policy.

    All fields are picklable; ``faults`` and ``budget`` carry the
    resilient study's fault plan and cell budget so injected fault
    streams (derived from the plan seed plus the cell key) are
    identical to the serial path's.
    """

    resilient: bool
    reps: int
    scale: float
    validate: bool
    retries: int = 0
    backoff_s: float = 0.0
    budget: object | None = None
    faults: object | None = None
    trace_dir: str | None = None
    #: when true, workers run with telemetry enabled and ship their
    #: metric/span snapshots back as per-task ``telemetry`` records
    telemetry: bool = False
    #: optional :class:`~repro.core.hostfaults.HostFaultPlan`; workers
    #: re-install it so injected storage faults and worker
    #: kills/stalls follow the parent's deterministic plan
    hostfaults: object | None = None


@dataclass(frozen=True)
class CellTask:
    """One (algorithm, input, device) pair and the variants still to
    run.  ``graph_or_name`` is a suite name or a pickled
    :class:`~repro.graphs.csr.CSRGraph`."""

    algorithm: str
    graph_or_name: object
    device: str
    variants: tuple[str, ...]


#: the per-process study, built once by the pool initializer
_WORKER_STUDY = None


def _init_worker(config: WorkerConfig) -> None:
    global _WORKER_STUDY
    import contextlib
    import signal

    from repro import telemetry
    from repro.core.resilience import ResilientStudy
    from repro.core.study import Study
    from repro.perf.trace import TraceCache

    # a forked worker inherits the parent's graceful-interrupt handler;
    # in a worker that handler would turn pool teardown SIGTERMs into
    # spurious SweepInterrupted tracebacks — interruption policy
    # belongs to the parent, so restore the defaults here
    with contextlib.suppress(OSError, ValueError):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    with contextlib.suppress(OSError, ValueError):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)

    # a forked worker inherits the parent's registry object — reset to
    # a fresh one (or to disabled) so shipped snapshots are pure deltas
    # and nothing the parent already counted is counted again
    if config.telemetry:
        telemetry.enable()
    else:
        telemetry.disable()
    # (re-)install the host-fault plan: under a spawn context the
    # worker starts clean, under fork it inherits the parent's hook —
    # either way the config is the single source of truth
    from repro.core import hostfaults

    if config.hostfaults is not None:
        hostfaults.install(config.hostfaults)
    else:
        hostfaults.uninstall()
    # workers never validate against the parent's retained outputs, so
    # they keep memory lean; the disk layer (when configured) is the
    # channel that shares recordings between workers and sweeps
    cache = TraceCache(disk_dir=config.trace_dir,
                       retain_outputs=config.validate)
    if config.resilient:
        _WORKER_STUDY = ResilientStudy(
            reps=config.reps, scale=config.scale, validate=config.validate,
            retries=config.retries, backoff_s=config.backoff_s,
            budget=config.budget, faults=config.faults,
            trace_cache=cache)
    else:
        _WORKER_STUDY = Study(reps=config.reps, scale=config.scale,
                              validate=config.validate, trace_cache=cache)


def _task_key(task: CellTask) -> tuple[str, str, str]:
    """The (algorithm, input name, device) identity of a task —
    stable across generations, used for fault draws and error
    wrapping."""
    name = getattr(task.graph_or_name, "name", task.graph_or_name)
    return task.algorithm, str(name), task.device


def _run_task(task: CellTask, generation: int = 0) -> list[dict]:
    """Execute one task in the worker; returns one record per variant.

    ``generation`` is the pool generation submitting the task; an
    installed host-fault plan may kill or stall this worker here
    (deterministically, keyed on the task identity and generation)
    before any cell work happens — which is exactly the window where
    :func:`execute_tasks` must detect the loss and resubmit.
    """
    from repro.core import hostfaults
    from repro.core.resilience import CellFailure, ResilientStudy

    hostfaults.maybe_disrupt(hostfaults.active_plan(), _task_key(task),
                             generation)
    study = _WORKER_STUDY
    if study is None:  # pragma: no cover - initializer always ran
        raise StudyError("worker pool used before initialization")
    records: list[dict] = []
    for value in task.variants:
        variant = Variant(value)
        if isinstance(study, ResilientStudy):
            out = study.run_cell(task.algorithm, task.graph_or_name,
                                 task.device, variant)
            if isinstance(out, CellFailure):
                records.append({
                    "kind": "failure",
                    "algorithm": out.algorithm,
                    "input": out.input_name,
                    "device": out.device_key,
                    "variant": out.variant,
                    "reason": out.reason,
                    "message": out.message,
                    "attempts": out.attempts,
                    "elapsed_s": out.elapsed_s,
                })
                continue
        else:
            out = study.run(task.algorithm, task.graph_or_name,
                            task.device, variant)
        records.append({
            "kind": "result",
            "algorithm": out.algorithm,
            "input": out.input_name,
            "device": out.device_key,
            "variant": out.variant.value,
            "runtimes_ms": list(out.runtimes_ms),
        })
    _append_telemetry_record(records)
    return records


def _append_telemetry_record(records: list[dict]) -> None:
    """Ship this task's metric/span deltas (and reset them).

    Snapshot-then-clear makes each record a pure per-task delta, so the
    parent merging records in submission order performs exactly the
    write sequence the serial path would have.
    """
    from repro.telemetry.metrics import get_registry
    from repro.telemetry.spans import get_spans

    registry = get_registry()
    if not registry.enabled:
        return
    spans = get_spans()
    records.append({
        "kind": "telemetry",
        "snapshot": registry.snapshot(),
        "spans": spans.snapshot(),
        "worker": str(os.getpid()),
    })
    registry.clear()
    spans.clear()


def _kill_workers(pool: ProcessPoolExecutor) -> None:
    """Forcibly end a pool's worker processes (stalled-worker path).

    ``shutdown`` cannot interrupt a worker that is asleep mid-task, so
    the deadline path has to reach for the processes themselves.  Uses
    the executor's private process table defensively — if a future
    stdlib renames it, the kill becomes a no-op and shutdown still
    reaps the workers when they eventually wake."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        with_kill = getattr(proc, "kill", None)
        if with_kill is not None:
            try:
                with_kill()
            except OSError:  # pragma: no cover - already gone
                pass


def _count_respawn() -> None:
    from repro.telemetry.metrics import SCOPE_PROCESS, get_registry

    reg = get_registry()
    if reg.enabled:
        reg.counter("repro_host_pool_respawns_total",
                    "Worker pools rebuilt after a worker died or "
                    "stalled past its deadline",
                    scope=SCOPE_PROCESS).inc(1)


def execute_tasks(config: WorkerConfig, tasks: list[CellTask], jobs: int,
                  merge: Callable[[dict], None],
                  respawn_budget: int | None = None,
                  task_deadline_s: float | None = None) -> None:
    """Run ``tasks`` on ``jobs`` workers, merging records serially.

    Every task is submitted up front (workers stay saturated), but
    ``merge`` is invoked strictly in submission order — the order the
    serial sweep would have produced — one record per variant.

    Worker death is survived, not propagated: when a worker is killed
    (OOM killer, SIGKILL, a segfaulting extension) the
    ``BrokenProcessPool`` takes down the whole pool, so this executor
    harvests every task that *did* finish, rebuilds the pool, and
    resubmits only the unfinished tasks — up to ``respawn_budget``
    rebuilds (default 3, or ``REPRO_POOL_RESPAWNS``).  With
    ``task_deadline_s`` set (or ``REPRO_TASK_DEADLINE_S``), a task
    that does not return in time is treated the same way: its worker
    generation is torn down (stalled workers are killed directly — a
    sleeping process ignores pool shutdown) and the task resubmitted.

    Completed-task records are stashed per task index and flushed only
    in index order, so recovery never reorders the merge: the memo —
    and therefore ``save_results`` output and checkpoints — stays
    byte-identical to the serial path even across pool rebuilds.

    A task that *raises* in a worker (as opposed to dying) is a harness
    bug, not a host fault: it propagates as
    :class:`~repro.errors.WorkerTaskError` naming the (algorithm,
    input, device) cell, and cancels the rest of the sweep.
    """
    import multiprocessing as mp

    if not tasks:
        return
    budget = _resolve_respawns(respawn_budget)
    deadline = _resolve_deadline(task_deadline_s)
    # fork inherits warm module state (algorithm registry, suite graph
    # cache) where available; fall back to the platform default
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else None)

    staged: dict[int, list[dict]] = {}
    flushed = [0]

    def flush() -> None:
        while flushed[0] < len(tasks) and flushed[0] in staged:
            for record in staged.pop(flushed[0]):
                merge(record)
            flushed[0] += 1

    pending: list[tuple[int, CellTask]] = list(enumerate(tasks))
    generation = 0
    respawns = 0
    while pending:
        workers = min(jobs, len(pending))
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx,
                                   initializer=_init_worker,
                                   initargs=(config,))
        broke = False
        submitted: list[tuple[int, CellTask, object]] = []
        try:
            try:
                for idx, task in pending:
                    submitted.append(
                        (idx, task,
                         pool.submit(_run_task, task, generation)))
            except BrokenProcessPool:
                # a worker died while tasks were still being enqueued
                broke = True
            for idx, task, future in submitted:
                if broke:
                    break
                if idx in staged:  # pragma: no cover - defensive
                    continue
                try:
                    staged[idx] = future.result(timeout=deadline)
                except BrokenProcessPool:
                    broke = True
                    break
                except concurrent.futures.TimeoutError as exc:
                    if not (future.done() and future.exception() is exc):
                        # the deadline expired while the worker kept
                        # sleeping — a stalled worker, not a result
                        broke = True
                        _kill_workers(pool)
                        break
                    algorithm, name, device = _task_key(task)
                    raise WorkerTaskError(
                        f"cell task {algorithm}/{name}/{device} failed "
                        f"in a pool worker: {exc!r}") from exc
                except BaseException as exc:
                    if future.done() and future.exception() is exc:
                        algorithm, name, device = _task_key(task)
                        raise WorkerTaskError(
                            f"cell task {algorithm}/{name}/{device} "
                            f"failed in a pool worker: {exc!r}"
                        ) from exc
                    # not the worker's doing (e.g. SweepInterrupted
                    # raised by a signal handler while waiting) —
                    # propagate untouched
                    raise
                flush()
            if broke:
                # the pool died mid-generation, but futures that had
                # already finished still hold their results — harvest
                # them so completed work is never re-executed
                for idx, task, future in submitted:
                    if (idx not in staged and future.done()
                            and not future.cancelled()
                            and future.exception() is None):
                        staged[idx] = future.result()
                flush()
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=not broke, cancel_futures=True)
        pending = [(idx, task) for idx, task in pending
                   if idx not in staged]
        if not pending:
            break
        respawns += 1
        if respawns > budget:
            raise StudyError(
                f"worker pool respawn budget exhausted ({budget} "
                f"rebuild(s)) with {len(pending)} task(s) unfinished — "
                "workers are dying faster than the sweep can make "
                f"progress (first stuck cell: "
                f"{'/'.join(_task_key(pending[0][1]))})")
        _count_respawn()
        generation += 1
    flush()
