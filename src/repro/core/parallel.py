"""Parallel sweep execution: fan cells out over a process pool.

The paper's evaluation is a (algorithm x input x device x variant x
reps) grid of *independent* cells — every simulated runtime depends
only on its own (algorithm, graph, variant, seed, staleness class) and
the device constants, never on other cells.  That makes the sweep
embarrassingly parallel, and this module is the executor:
:meth:`repro.core.study.Study.speedup_table` and
:meth:`repro.core.resilience.ResilientStudy.sweep` build one
:class:`CellTask` per missing (algorithm, input) pair and hand them to
:func:`execute_tasks`, which runs them on a ``ProcessPoolExecutor`` and
feeds picklable result records back to the study **in submission
order** — so the memo (and therefore ``save_results`` output, speedup
tables, and checkpoints) is byte-identical to the serial path.

Each worker process owns a private study configured from the parent's
:class:`WorkerConfig` (same reps/scale/validate/retry policy, same
fault plan seed) plus a :class:`~repro.perf.trace.TraceCache` pointed
at the parent's on-disk trace directory when one is configured — that
shared disk layer is how workers pricing different devices reuse one
functional execution per staleness class.

Knobs: ``Study(jobs=N)`` / ``speedup_table(..., jobs=N)`` /
``repro sweep --jobs N``, all defaulting to the ``REPRO_JOBS``
environment variable (unset = 1 = serial, no pool is ever created).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.core.variants import Variant
from repro.errors import StudyError

JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit argument, else ``REPRO_JOBS``,
    else 1 (serial)."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise StudyError(
                f"{JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    jobs = int(jobs)
    if jobs < 1:
        raise StudyError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a pool worker needs to rebuild the parent's policy.

    All fields are picklable; ``faults`` and ``budget`` carry the
    resilient study's fault plan and cell budget so injected fault
    streams (derived from the plan seed plus the cell key) are
    identical to the serial path's.
    """

    resilient: bool
    reps: int
    scale: float
    validate: bool
    retries: int = 0
    backoff_s: float = 0.0
    budget: object | None = None
    faults: object | None = None
    trace_dir: str | None = None
    #: when true, workers run with telemetry enabled and ship their
    #: metric/span snapshots back as per-task ``telemetry`` records
    telemetry: bool = False


@dataclass(frozen=True)
class CellTask:
    """One (algorithm, input, device) pair and the variants still to
    run.  ``graph_or_name`` is a suite name or a pickled
    :class:`~repro.graphs.csr.CSRGraph`."""

    algorithm: str
    graph_or_name: object
    device: str
    variants: tuple[str, ...]


#: the per-process study, built once by the pool initializer
_WORKER_STUDY = None


def _init_worker(config: WorkerConfig) -> None:
    global _WORKER_STUDY
    from repro import telemetry
    from repro.core.resilience import ResilientStudy
    from repro.core.study import Study
    from repro.perf.trace import TraceCache

    # a forked worker inherits the parent's registry object — reset to
    # a fresh one (or to disabled) so shipped snapshots are pure deltas
    # and nothing the parent already counted is counted again
    if config.telemetry:
        telemetry.enable()
    else:
        telemetry.disable()
    # workers never validate against the parent's retained outputs, so
    # they keep memory lean; the disk layer (when configured) is the
    # channel that shares recordings between workers and sweeps
    cache = TraceCache(disk_dir=config.trace_dir,
                       retain_outputs=config.validate)
    if config.resilient:
        _WORKER_STUDY = ResilientStudy(
            reps=config.reps, scale=config.scale, validate=config.validate,
            retries=config.retries, backoff_s=config.backoff_s,
            budget=config.budget, faults=config.faults,
            trace_cache=cache)
    else:
        _WORKER_STUDY = Study(reps=config.reps, scale=config.scale,
                              validate=config.validate, trace_cache=cache)


def _run_task(task: CellTask) -> list[dict]:
    """Execute one task in the worker; returns one record per variant."""
    from repro.core.resilience import CellFailure, ResilientStudy

    study = _WORKER_STUDY
    if study is None:  # pragma: no cover - initializer always ran
        raise StudyError("worker pool used before initialization")
    records: list[dict] = []
    for value in task.variants:
        variant = Variant(value)
        if isinstance(study, ResilientStudy):
            out = study.run_cell(task.algorithm, task.graph_or_name,
                                 task.device, variant)
            if isinstance(out, CellFailure):
                records.append({
                    "kind": "failure",
                    "algorithm": out.algorithm,
                    "input": out.input_name,
                    "device": out.device_key,
                    "variant": out.variant,
                    "reason": out.reason,
                    "message": out.message,
                    "attempts": out.attempts,
                    "elapsed_s": out.elapsed_s,
                })
                continue
        else:
            out = study.run(task.algorithm, task.graph_or_name,
                            task.device, variant)
        records.append({
            "kind": "result",
            "algorithm": out.algorithm,
            "input": out.input_name,
            "device": out.device_key,
            "variant": out.variant.value,
            "runtimes_ms": list(out.runtimes_ms),
        })
    _append_telemetry_record(records)
    return records


def _append_telemetry_record(records: list[dict]) -> None:
    """Ship this task's metric/span deltas (and reset them).

    Snapshot-then-clear makes each record a pure per-task delta, so the
    parent merging records in submission order performs exactly the
    write sequence the serial path would have.
    """
    from repro.telemetry.metrics import get_registry
    from repro.telemetry.spans import get_spans

    registry = get_registry()
    if not registry.enabled:
        return
    spans = get_spans()
    records.append({
        "kind": "telemetry",
        "snapshot": registry.snapshot(),
        "spans": spans.snapshot(),
        "worker": str(os.getpid()),
    })
    registry.clear()
    spans.clear()


def execute_tasks(config: WorkerConfig, tasks: list[CellTask], jobs: int,
                  merge: Callable[[dict], None]) -> None:
    """Run ``tasks`` on ``jobs`` workers, merging records serially.

    Every task is submitted up front (workers stay saturated), but
    ``merge`` is invoked strictly in submission order — the order the
    serial sweep would have produced — one record per variant.  A
    worker exception cancels the remaining tasks and propagates.
    """
    import multiprocessing as mp

    if not tasks:
        return
    # fork inherits warm module state (algorithm registry, suite graph
    # cache) where available; fall back to the platform default
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else None)
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers, mp_context=ctx,
                             initializer=_init_worker,
                             initargs=(config,)) as pool:
        try:
            futures = [pool.submit(_run_task, t) for t in tasks]
            for future in futures:
                for record in future.result():
                    merge(record)
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
