"""Resilient sweep execution: per-cell isolation, budgets, retries,
and checkpoint/resume for the study framework.

The paper's sweeps (Tables IV-IX) run hundreds of (algorithm x input x
device x variant x repetition) cells, and its own Section II argues that
racy kernels can livelock, tear words, and corrupt results.  A plain
:class:`~repro.core.study.Study` lets the first such failure abort the
whole sweep and discard every completed cell.  This module makes the
sweep layer survive, record, and report those failures instead:

* a failing cell becomes a structured :class:`CellFailure` record and
  the sweep continues (per-cell isolation);
* :class:`DeadlockError` livelocks become recorded failures, bounded by
  the :class:`CellBudget` step/wall-clock limits, not crashes;
* transient faults (:class:`~repro.errors.TransientKernelFault`) are
  retried with fresh schedule seeds and exponential backoff;
* after every cell the study checkpoints atomically (temp file +
  rename), and a later run can ``--resume`` to execute only the
  missing cells;
* partial results still render: see
  :func:`repro.core.report.resilient_speedup_table`, which prints
  ``FAIL(reason)`` cells and coverage-annotated geomeans.

With no fault plan and default budgets, :class:`ResilientStudy`
reproduces plain :class:`Study` results bit-identically — the guard
rails cost nothing until something goes wrong.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.core.study import RunResult, SpeedupCell, Study
from repro.core.variants import Variant, get_algorithm
from repro.errors import (
    CellTimeoutError,
    DeadlockError,
    ReproError,
    StudyError,
    SweepInterrupted,
    TransientKernelFault,
    ValidationError,
)
from repro.gpu.device import get_device
from repro.gpu.faults import FaultPlan
from repro.perf.engine import PerfRun, run_algorithm
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry
from repro.telemetry.spans import get_spans
from repro.utils.atomicio import atomic_write_text
from repro.utils.backoff import BackoffPolicy

CHECKPOINT_FORMAT = 3
"""On-disk checkpoint format version (results + failures).

Format 3 adds a CRC32 content checksum (``crc``); format-2 files (no
checksum) still load.  Anything else is treated as a damaged
generation and falls back to the rotated ``.prev`` file."""

_LOADABLE_FORMATS = (2, CHECKPOINT_FORMAT)


def checkpoint_crc(payload: dict) -> int:
    """CRC32 over the checkpoint's record content (canonical JSON of
    the results and failures lists), independent of file formatting."""
    body = [payload.get("results", []), payload.get("failures", [])]
    return zlib.crc32(json.dumps(body, sort_keys=True).encode())


class _CheckpointDamaged(StudyError):
    """Internal: one checkpoint *generation* is unreadable (torn,
    bit-flipped, or wrong format) — distinct from a configuration
    mismatch, which must not silently fall back."""


@dataclass(frozen=True)
class CellBudget:
    """Per-cell execution limits.

    ``max_seconds`` is a wall-clock budget checked between repetitions
    and attempts; exceeding it records a ``timeout`` failure.
    ``max_steps`` is the SIMT micro-step budget for kernel-level
    execution (forwarded to :class:`~repro.gpu.simt.SimtExecutor`),
    which converts infinite polling loops into
    :class:`~repro.errors.DeadlockError` — recorded here as
    ``livelock``.  Performance-level runs always terminate, so for them
    only the wall-clock limit and injected livelocks apply.
    """

    max_seconds: float | None = None
    max_steps: int | None = None


@dataclass(frozen=True)
class CellFailure:
    """One failed sweep cell, preserved instead of crashing the sweep.

    Field names mirror :class:`~repro.core.study.SpeedupCell` so report
    code can lay failures out in the same grid.
    """

    algorithm: str
    input_name: str
    device_key: str
    variant: str
    reason: str           # livelock | timeout | validation | fault | error
    message: str
    attempts: int
    elapsed_s: float

    def describe(self) -> str:
        return (f"FAIL({self.reason}) {self.algorithm}/{self.input_name}/"
                f"{self.device_key}/{self.variant}")


@dataclass(frozen=True)
class GuardedFailure:
    """Outcome classification produced by :func:`run_guarded`."""

    reason: str
    message: str
    attempts: int
    elapsed_s: float


def run_guarded(
    fn: Callable[[int], object],
    retries: int = 0,
    backoff_s: float = 0.0,
    budget: CellBudget | None = None,
    sleep: Callable[[float], None] = time.sleep,
    backoff: BackoffPolicy | None = None,
):
    """Run ``fn(attempt)`` under the resilience policy.

    Returns ``(value, None)`` on success or ``(None, GuardedFailure)``
    on failure.  The policy:

    * :class:`TransientKernelFault` — retry up to ``retries`` times
      with exponential full-jitter backoff (a
      :class:`~repro.utils.backoff.BackoffPolicy` built from
      ``backoff_s``, or ``backoff`` verbatim when given), clamped to
      the wall-clock budget's remaining time so a retry can never
      sleep past its own deadline; ``fn``
      receives the attempt index so it can derive fresh schedule seeds.
    * :class:`DeadlockError` — recorded as ``livelock`` (the step
      budget turned an infinite polling loop into this error); no
      retry, livelocks are schedule-lottery losses the caller should
      see.
    * :class:`CellTimeoutError` — recorded as ``timeout``.
    * :class:`ValidationError` — recorded as ``validation`` (silent
      corruption caught by the reference checkers).
    * any other :class:`ReproError` — recorded as ``error``.

    Non-:class:`ReproError` exceptions propagate: they indicate bugs in
    the harness, not failures of the simulated hardware.
    """
    if backoff is None and backoff_s > 0.0:
        backoff = BackoffPolicy(base_s=backoff_s)
    start = time.monotonic()
    attempts = 0
    last_message = ""
    for attempt in range(max(0, retries) + 1):
        if (budget is not None and budget.max_seconds is not None
                and time.monotonic() - start > budget.max_seconds):
            return None, GuardedFailure(
                "timeout",
                f"cell exceeded {budget.max_seconds:g}s wall-clock budget "
                f"before attempt {attempt}",
                attempts, time.monotonic() - start)
        attempts += 1
        try:
            return fn(attempt), None
        except SweepInterrupted:
            # raised by the graceful-interrupt signal handler, which
            # can fire at any bytecode — an operator stop, never a
            # recordable cell failure
            raise
        except TransientKernelFault as exc:
            last_message = str(exc)
            if attempt < retries and backoff is not None:
                remaining = None
                if (budget is not None
                        and budget.max_seconds is not None):
                    remaining = (budget.max_seconds
                                 - (time.monotonic() - start))
                delay = backoff.delay(attempt, remaining_s=remaining)
                if delay > 0.0:
                    sleep(delay)
        except CellTimeoutError as exc:
            return None, GuardedFailure(
                "timeout", str(exc), attempts, time.monotonic() - start)
        except DeadlockError as exc:
            return None, GuardedFailure(
                "livelock", str(exc), attempts, time.monotonic() - start)
        except ValidationError as exc:
            return None, GuardedFailure(
                "validation", str(exc), attempts, time.monotonic() - start)
        except ReproError as exc:
            return None, GuardedFailure(
                "error", str(exc), attempts, time.monotonic() - start)
    return None, GuardedFailure(
        "fault",
        f"transient fault persisted through {attempts} attempt(s): "
        f"{last_message}",
        attempts, time.monotonic() - start)


@dataclass
class SweepResult:
    """Outcome of one :meth:`ResilientStudy.sweep` (one device table)."""

    device_key: str
    cells: list  # SpeedupCell | CellFailure, in sweep order

    @property
    def completed(self) -> list[SpeedupCell]:
        return [c for c in self.cells if isinstance(c, SpeedupCell)]

    @property
    def failures(self) -> list[CellFailure]:
        return [c for c in self.cells if isinstance(c, CellFailure)]

    @property
    def coverage(self) -> tuple[int, int]:
        """(completed cells, total cells)."""
        return len(self.completed), len(self.cells)


class ResilientStudy(Study):
    """A :class:`Study` that survives the failures it measures.

    Parameters beyond :class:`Study`'s:

    retries:
        Extra attempts per cell after a transient kernel fault, each
        with a fresh schedule-seed family.
    backoff_s:
        Base of the exponential full-jitter retry backoff
        (:class:`~repro.utils.backoff.BackoffPolicy`; 0 disables
        sleeping).
    budget:
        Per-cell :class:`CellBudget` (wall-clock and SIMT step limits).
    faults:
        Optional :class:`~repro.gpu.faults.FaultPlan`; every repetition
        of every cell gets its own deterministic injector derived from
        (cell key, repetition, attempt).
    checkpoint:
        Path for incremental checkpoints: after every cell the full
        result + failure state is re-written atomically.  Use
        :meth:`load_checkpoint` (or the CLI's ``--resume``) to continue
        an interrupted sweep, executing only the missing cells.
    """

    def __init__(self, reps: int = 9, scale: float = 1.0,
                 validate: bool = False, retries: int = 0,
                 backoff_s: float = 0.0,
                 budget: CellBudget | None = None,
                 faults: FaultPlan | None = None,
                 checkpoint: str | Path | None = None,
                 trace_cache=None, jobs: int | None = None) -> None:
        super().__init__(reps=reps, scale=scale, validate=validate,
                         trace_cache=trace_cache, jobs=jobs)
        if retries < 0:
            raise StudyError(f"retries must be >= 0, got {retries}")
        self.retries = retries
        self.backoff_s = backoff_s
        self.budget = budget or CellBudget()
        self.faults = faults
        self.checkpoint = None if checkpoint is None else Path(checkpoint)
        self._failures: dict[tuple, CellFailure] = {}
        #: cells actually simulated in this process (memoized or
        #: checkpoint-loaded cells do not count) — the observable that
        #: resume tests assert on
        self.cells_executed = 0
        #: times :meth:`load_checkpoint` had to fall back to the
        #: rotated ``.prev`` generation
        self.checkpoint_fallbacks = 0
        #: malformed records skipped (salvaged around) during load
        self.checkpoint_salvaged = 0
        #: autosave attempts that failed with an OSError (the sweep
        #: keeps running; checkpointing is an optimization)
        self.checkpoint_write_errors = 0

    # ------------------------------------------------------------------
    # Cell execution
    # ------------------------------------------------------------------
    def _count_cell(self, outcome: str, attempts: int) -> None:
        reg = get_registry()
        if not reg.enabled:
            return
        reg.counter("repro_cells_total",
                    "Sweep cells executed, by final outcome", ("outcome",)
                    ).inc(1, outcome)
        reg.counter("repro_cell_attempts_total",
                    "Cell execution attempts (first tries + retries)"
                    ).inc(max(attempts, 1))
        if attempts > 1:
            reg.counter("repro_cell_retries_total",
                        "Extra attempts after transient kernel faults"
                        ).inc(attempts - 1)
        if outcome == "timeout":
            reg.counter("repro_watchdog_trips_total",
                        "Cells stopped by the wall-clock budget watchdog"
                        ).inc(1)

    def _injector(self, key: tuple, rep: int, attempt: int):
        if self.faults is None:
            return None
        algorithm, name, device, variant = key
        return self.faults.injector(
            algorithm, name, device, variant.value, rep, attempt)

    def run_cell(self, algorithm: str, graph_or_name, device: str,
                 variant: Variant) -> RunResult | CellFailure:
        """Run one configuration with fault isolation.

        Returns the memoized :class:`RunResult` on success, or a
        :class:`CellFailure` record — never raises for failures of the
        simulated execution itself.
        """
        key, name = self._memo_key(algorithm, graph_or_name, device, variant)
        if key in self._results:
            return self._results[key]
        if key in self._failures:
            return self._failures[key]

        algo = get_algorithm(algorithm)
        spec = get_device(device)
        graph = self._prepare_graph(algo, graph_or_name)
        deadline = (None if self.budget.max_seconds is None
                    else time.monotonic() + self.budget.max_seconds)
        attempts_made = [0]

        def attempt_cell(attempt: int) -> RunResult:
            attempts_made[0] = attempt + 1
            runtimes: list[float] = []
            last: PerfRun | None = None
            for rep in range(self.reps):
                if deadline is not None and time.monotonic() > deadline:
                    raise CellTimeoutError(
                        f"cell exceeded {self.budget.max_seconds:g}s "
                        f"wall-clock budget after {rep} of {self.reps} "
                        "repetitions"
                    )
                run = run_algorithm(
                    algo, graph, spec, variant,
                    seed=self._rep_seed(rep, attempt),
                    faults=self._injector(key, rep, attempt),
                    trace_cache=self.trace_cache,
                    need_output=self.validate)
                if self.validate:
                    self._validate(algo, graph, run)
                runtimes.append(run.runtime_ms)
                last = run
            return RunResult(algorithm, name, device, variant,
                             runtimes, last)

        with get_spans().span("sweep.cell", algorithm=algorithm,
                              input=name, device=device,
                              variant=variant.value) as sp:
            value, failure = run_guarded(
                attempt_cell, retries=self.retries,
                backoff_s=self.backoff_s, budget=self.budget)
            outcome = "ok" if failure is None else failure.reason
            sp.set(outcome=outcome, attempts=attempts_made[0])
        self._count_cell(outcome, attempts_made[0])
        self.cells_executed += 1
        if failure is not None:
            record = CellFailure(
                algorithm=algorithm, input_name=name, device_key=device,
                variant=variant.value, reason=failure.reason,
                message=failure.message, attempts=failure.attempts,
                elapsed_s=failure.elapsed_s)
            self._failures[key] = record
            self._autosave()
            return record
        self._results[key] = value
        self._autosave()
        return value

    def run(self, algorithm: str, graph_or_name, device: str,
            variant: Variant) -> RunResult:
        """Strict view of :meth:`run_cell`: raises on a failed cell.

        Keeps the plain :class:`Study` API working on the resilient
        path (budgets, retries, fault plans, per-cell checkpoints)
        while preserving exact results when nothing goes wrong.
        """
        out = self.run_cell(algorithm, graph_or_name, device, variant)
        if isinstance(out, CellFailure):
            raise StudyError(f"{out.describe()}: {out.message}")
        return out

    def speedup_cell(self, algorithm: str, graph_or_name,
                     device: str) -> SpeedupCell | CellFailure:
        """Baseline-vs-race-free speedup with fault isolation.

        Both variants always run (so a checkpoint records the surviving
        variant even when the other fails); a failure of either variant
        makes the cell a :class:`CellFailure`, baseline first.
        """
        algo = get_algorithm(algorithm)
        if not algo.has_races:
            raise StudyError(
                f"{algorithm} has no data races (Section IV.A); the paper "
                "does not measure its race-free speedup"
            )
        base = self.run_cell(algorithm, graph_or_name, device,
                             Variant.BASELINE)
        free = self.run_cell(algorithm, graph_or_name, device,
                             Variant.RACE_FREE)
        if isinstance(base, CellFailure):
            return base
        if isinstance(free, CellFailure):
            return free
        return SpeedupCell(
            algorithm=algorithm,
            input_name=base.input_name,
            device_key=device,
            baseline_ms=base.median_ms,
            racefree_ms=free.median_ms,
        )

    def sweep(self, device: str, algorithms: list[str],
              inputs: list[str], jobs: int | None = None) -> SweepResult:
        """All cells of one device table, surviving per-cell failures.

        ``jobs > 1`` runs the missing cells on a process pool (workers
        apply the same retry/budget/fault policy and return picklable
        outcome records), then assembles the table from the memo; the
        cells, checkpoints, and ``save_results`` output are
        bit-identical to the serial path.
        """
        jobs = jobs if jobs is not None else self.jobs
        with self._graceful_interrupt():
            with get_spans().span("study.sweep", device=device, jobs=jobs,
                                  cells=len(algorithms) * len(inputs),
                                  resilient=True):
                if jobs > 1:
                    self._parallel_prefetch(device, algorithms, inputs,
                                            jobs)
                cells = [
                    self.speedup_cell(a, name, device)
                    for name in inputs
                    for a in algorithms
                ]
        return SweepResult(device_key=device, cells=cells)

    @contextlib.contextmanager
    def _graceful_interrupt(self):
        """Convert SIGINT/SIGTERM during a sweep into a clean stop.

        The signal raises :class:`~repro.errors.SweepInterrupted` at
        the next bytecode boundary; every completed cell has already
        been checkpointed by ``_autosave``, and one final checkpoint
        write (with the default handlers restored, so a second signal
        kills hard) guarantees the file reflects the last finished
        cell.  The CLI maps the exception to exit code 3.  Outside the
        main thread — or on platforms without these signals — the sweep
        runs unguarded, unchanged.
        """
        if threading.current_thread() is not threading.main_thread():
            yield
            return

        def _handler(signum, frame):
            name = signal.Signals(signum).name
            raise SweepInterrupted(
                f"sweep interrupted by {name}; checkpoint is consistent "
                "as of the last completed cell — rerun with --resume")

        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(OSError, ValueError):
                previous[sig] = signal.signal(sig, _handler)
        try:
            yield
        except SweepInterrupted:
            for sig, old in previous.items():
                signal.signal(sig, old)
            with contextlib.suppress(OSError):
                self._autosave()
            raise
        finally:
            for sig, old in previous.items():
                with contextlib.suppress(OSError, ValueError):
                    signal.signal(sig, old)

    # ------------------------------------------------------------------
    # Parallel execution hooks (see repro.core.parallel)
    # ------------------------------------------------------------------
    def _cell_done(self, key: tuple) -> bool:
        return key in self._results or key in self._failures

    def _worker_config(self):
        from repro.core.parallel import WorkerConfig

        trace_dir = (str(self.trace_cache.disk_dir)
                     if self.trace_cache is not None
                     and self.trace_cache.disk_dir is not None else None)
        from repro.core import hostfaults
        from repro.telemetry.metrics import telemetry_enabled

        return WorkerConfig(resilient=True, reps=self.reps,
                            scale=self.scale, validate=self.validate,
                            retries=self.retries, backoff_s=self.backoff_s,
                            budget=self.budget, faults=self.faults,
                            trace_dir=trace_dir,
                            telemetry=telemetry_enabled(),
                            hostfaults=hostfaults.active_plan())

    def _merge_parallel_record(self, record: dict) -> None:
        if record.get("kind") == "telemetry":
            self._merge_telemetry_record(record)
            return
        variant = Variant(record["variant"])
        key = (record["algorithm"], record["input"], record["device"],
               variant)
        if key in self._results or key in self._failures:
            return
        if record["kind"] == "failure":
            self._failures[key] = CellFailure(
                algorithm=record["algorithm"],
                input_name=record["input"],
                device_key=record["device"],
                variant=record["variant"],
                reason=record["reason"],
                message=record["message"],
                attempts=int(record["attempts"]),
                elapsed_s=float(record["elapsed_s"]))
        else:
            super()._merge_parallel_record(record)
        # each record is one cell a worker actually executed (the
        # parent only submits cells missing from memo and checkpoint)
        self.cells_executed += 1
        self._autosave()

    def failures(self) -> list[CellFailure]:
        """Every failure recorded (or checkpoint-loaded) so far."""
        return list(self._failures.values())

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    @staticmethod
    def _prev_path(path: Path) -> Path:
        """The rotated previous-generation file next to ``path``."""
        return path.with_name(path.name + ".prev")

    def _count_host(self, name: str, help: str) -> None:
        reg = get_registry()
        if reg.enabled:
            reg.counter(name, help, scope=SCOPE_PROCESS).inc(1)

    def _autosave(self) -> None:
        """Checkpoint after a cell, surviving checkpoint-write failure.

        A full scratch disk must not kill a sweep whose actual results
        live in memory: the error is counted
        (``repro_host_checkpoint_write_errors_total``) and the sweep
        continues — the next cell retries the write.
        """
        if self.checkpoint is None:
            return
        try:
            self.save_checkpoint(self.checkpoint)
        except OSError:
            self.checkpoint_write_errors += 1
            self._count_host(
                "repro_host_checkpoint_write_errors_total",
                "Checkpoint autosaves that failed with an OSError")

    def save_checkpoint(self, path: str | Path | None = None) -> None:
        """Atomically persist all results *and* failures.

        Called after every cell when a checkpoint path is configured; a
        crash between cells loses at most the in-flight cell.  The
        payload carries a CRC32 content checksum, and the previous
        generation — *verified* before rotation, so a torn current file
        never displaces a good one — is kept as ``<name>.prev`` for
        :meth:`load_checkpoint` to fall back to.
        """
        path = Path(path) if path is not None else self.checkpoint
        if path is None:
            raise StudyError("no checkpoint path configured")
        payload = {
            "format": CHECKPOINT_FORMAT,
            "reps": self.reps,
            "scale": self.scale,
            "results": self._result_records(),
            "failures": [
                {
                    "algorithm": f.algorithm,
                    "input": f.input_name,
                    "device": f.device_key,
                    "variant": f.variant,
                    "reason": f.reason,
                    "message": f.message,
                    "attempts": f.attempts,
                    "elapsed_s": f.elapsed_s,
                }
                for f in self._failures.values()
            ],
        }
        payload["crc"] = checkpoint_crc(payload)
        self._rotate_generation(path)
        atomic_write_text(path, json.dumps(payload, indent=1))

    def _rotate_generation(self, path: Path) -> None:
        """Keep the last *good* generation as ``.prev``.

        Only a generation that still parses and passes its checksum is
        rotated; a corrupt current file (torn by an earlier injected or
        real fault) is left in place so it cannot clobber the last good
        ``.prev``.
        """
        if not path.exists():
            return
        try:
            self._read_generation(path)
        except StudyError:
            return
        with contextlib.suppress(OSError):
            os.replace(path, self._prev_path(path))

    def _read_generation(self, path: Path) -> dict:
        """Parse + integrity-check one checkpoint generation.

        Raises :class:`_CheckpointDamaged` for anything recovery should
        fall back from (unreadable, torn, checksum mismatch, unknown
        format) and plain :class:`StudyError` for a reps/scale
        configuration mismatch, which must surface, not be papered
        over by the ``.prev`` generation.
        """
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise _CheckpointDamaged(
                f"corrupt or partial checkpoint {path}: {exc}") from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise _CheckpointDamaged(
                f"corrupt or partial checkpoint {path}: {exc}") from exc
        if not isinstance(payload, dict) or "results" not in payload:
            raise _CheckpointDamaged(
                f"{path} is not a study checkpoint file")
        if payload.get("format") not in _LOADABLE_FORMATS:
            raise _CheckpointDamaged(
                f"checkpoint {path} has unsupported format "
                f"{payload.get('format')!r} (loadable: "
                f"{_LOADABLE_FORMATS})")
        if "crc" in payload and payload["crc"] != checkpoint_crc(payload):
            raise _CheckpointDamaged(
                f"checkpoint {path} failed its content checksum "
                "(bit rot or partial overwrite)")
        if (payload.get("reps") != self.reps
                or payload.get("scale") != self.scale):
            raise StudyError(
                "saved results were produced with a different reps/scale "
                f"({payload.get('reps')}/{payload.get('scale')} vs "
                f"{self.reps}/{self.scale})")
        return payload

    def _salvage_payload(self, payload: dict) -> tuple[int, int]:
        """Stage every parseable record, skip damaged ones, commit once.

        All-or-nothing against *exceptions*: the memo and failure map
        are only touched after the whole payload has been staged into
        locals, so a malformed record can never leave the study
        half-loaded.  Damaged records are skipped (and counted as
        ``checkpoint_salvaged``) rather than discarding the generation.
        """
        staged_results: dict[tuple, RunResult] = {}
        staged_failures: dict[tuple, CellFailure] = {}
        skipped = 0
        for rec in payload.get("results", []):
            try:
                variant = Variant(rec["variant"])
                key = (rec["algorithm"], rec["input"], rec["device"],
                       variant)
                staged_results[key] = RunResult(
                    rec["algorithm"], rec["input"], rec["device"],
                    variant, [float(x) for x in rec["runtimes_ms"]],
                    last_run=None)
            except (KeyError, TypeError, ValueError):
                skipped += 1
        for rec in payload.get("failures", []):
            try:
                variant = Variant(rec["variant"])
                key = (rec["algorithm"], rec["input"], rec["device"],
                       variant)
                staged_failures[key] = CellFailure(
                    algorithm=rec["algorithm"], input_name=rec["input"],
                    device_key=rec["device"], variant=rec["variant"],
                    reason=rec["reason"], message=rec.get("message", ""),
                    attempts=int(rec.get("attempts", 1)),
                    elapsed_s=float(rec.get("elapsed_s", 0.0)))
            except (KeyError, TypeError, ValueError):
                skipped += 1
        if skipped:
            self.checkpoint_salvaged += skipped
            reg = get_registry()
            if reg.enabled:
                reg.counter("repro_host_checkpoint_salvaged_total",
                            "Malformed checkpoint records skipped during "
                            "a salvage load", scope=SCOPE_PROCESS
                            ).inc(skipped)
        self._results.update(staged_results)
        self._failures.update(staged_failures)
        return len(staged_results), len(staged_failures)

    def load_checkpoint(self, path: str | Path | None = None
                        ) -> tuple[int, int]:
        """Resume from a checkpoint; returns (results, failures) loaded.

        Loaded cells are memoized, so a subsequent :meth:`sweep`
        executes only the missing ones (``cells_executed`` counts just
        those).  Previously failed cells stay failed — delete their
        records from the file to re-attempt them.

        Recovery ladder: a damaged current generation (torn, checksum
        mismatch, unknown format) falls back to the rotated ``.prev``
        generation (counted in ``checkpoint_fallbacks`` and
        ``repro_host_checkpoint_fallbacks_total``); within a readable
        generation, malformed records are skipped and the rest
        salvaged, with the commit staged so the study is never left
        half-loaded.  Only when *every* generation is unreadable — or
        the file was written with a different reps/scale — does this
        raise :class:`~repro.errors.StudyError`.
        """
        path = Path(path) if path is not None else self.checkpoint
        if path is None:
            raise StudyError("no checkpoint path configured")
        damage: _CheckpointDamaged | None = None
        for fallback, candidate in enumerate(
                (path, self._prev_path(path))):
            try:
                payload = self._read_generation(candidate)
            except _CheckpointDamaged as exc:
                damage = damage or exc
                continue
            if fallback:
                self.checkpoint_fallbacks += 1
                self._count_host(
                    "repro_host_checkpoint_fallbacks_total",
                    "Checkpoint loads served by the rotated .prev "
                    "generation after the current one was damaged")
            return self._salvage_payload(payload)
        assert damage is not None
        raise damage
