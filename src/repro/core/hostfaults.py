"""Deterministic fault injection for the *host* machine.

:mod:`repro.gpu.faults` makes the simulated GPU adversarial; this
module does the same for the infrastructure the sweep itself runs on —
the disk that holds checkpoints and trace-cache files, and the pool
worker processes that execute cells.  The paper's methodology (Section
V: nine repetitions, medians, multi-hour sweeps over 4 GPUs x 27
inputs) only holds up if a campaign survives the host failing under it,
so the failure modes here are the classic ones of long-running
measurement harnesses:

* ``torn``    — a stored payload is truncated mid-write (power loss
  between write and rename, a non-atomic copy, an interrupted rsync).
* ``bitflip`` — one bit of a stored payload is flipped (medium rot,
  bad RAM on the NFS server).
* ``enospc``  — the write fails with ``ENOSPC`` (the scratch disk
  filled up under the sweep).
* ``eio``     — the write fails with ``EIO`` (a dying disk).
* ``kill``    — the pool worker executing a task is SIGKILLed mid-task
  (the OOM killer; an operator's stray ``kill -9``).
* ``stall``   — the worker stops making progress for a long window
  (NFS hang, cgroup freeze, paging storm).

Everything is *seeded and deterministic*: storage decisions derive from
a stable digest of (plan seed, kind, file name, per-file write index),
worker disruptions from (plan seed, kind, cell key, pool generation) —
never Python's randomized ``hash()`` — so a failing chaos run replays
exactly.  With no plan installed the hooks are absent and every write
is byte-identical to an uninjected tree.

Plug-in points
--------------

* :func:`install` registers a write-filter with
  :mod:`repro.utils.atomicio`, so *every* atomic write in the process
  (checkpoints, trace-cache files, telemetry exports) passes through
  the injector.  ``targets`` globs scope the blast radius (e.g.
  ``("trace-*.json",)`` faults only the trace cache).
* :class:`~repro.core.parallel.WorkerConfig` carries the active plan
  into pool workers, where :func:`maybe_disrupt` is consulted once per
  task for ``kill``/``stall``.
* ``disrupt_generations=N`` limits worker disruptions to the first N
  pool generations, so a chaos scenario with ``kill=1.0`` still
  converges once the pool has been respawned N times.

See ``docs/robustness.md`` ("Host faults") for the fault -> detection
-> recovery -> telemetry matrix, and :mod:`repro.core.chaos` for the
harness that asserts byte-identical recovery under each kind.
"""

from __future__ import annotations

import contextlib
import enum
import errno
import fnmatch
import hashlib
import os
import random
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import FaultConfigError
from repro.telemetry.metrics import SCOPE_PROCESS, get_registry
from repro.utils import atomicio


class HostFaultKind(enum.Enum):
    """The injectable host failure modes (names double as spec keywords)."""

    TORN_WRITE = "torn"
    BIT_FLIP = "bitflip"
    NO_SPACE = "enospc"
    IO_ERROR = "eio"
    WORKER_KILL = "kill"
    WORKER_STALL = "stall"


#: kinds applied by the storage write-filter
STORAGE_KINDS = frozenset({
    HostFaultKind.TORN_WRITE,
    HostFaultKind.BIT_FLIP,
    HostFaultKind.NO_SPACE,
    HostFaultKind.IO_ERROR,
})

#: kinds applied to pool worker processes, once per task
DISRUPTION_KINDS = frozenset({
    HostFaultKind.WORKER_KILL,
    HostFaultKind.WORKER_STALL,
})


@dataclass(frozen=True)
class HostFaultSpec:
    """One host fault kind with its per-opportunity trigger probability.

    The opportunity is one atomic write for the storage kinds and one
    (task, pool generation) execution for the worker kinds.
    """

    kind: HostFaultKind
    rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise FaultConfigError(
                f"host fault rate must be in [0, 1], got {self.rate} "
                f"for {self.kind.value!r}"
            )


class HostFaultPlan:
    """A seeded set of :class:`HostFaultSpec` rates plus scoping knobs.

    Parameters
    ----------
    specs:
        The fault kinds and rates.
    seed:
        Root of every derived decision digest.
    targets:
        Filename globs the storage kinds apply to (matched against the
        written file's *name*, e.g. ``"trace-*.json"`` or ``"*.ckpt"``);
        empty means every atomic write is eligible.
    stall_seconds:
        How long an injected worker stall sleeps.
    disrupt_generations:
        Worker ``kill``/``stall`` fire only while the pool generation is
        below this bound (``None`` = always eligible).  A plan with
        ``kill=1.0, disrupt_generations=1`` kills every first-generation
        worker and lets the respawned pool finish — the deterministic
        "every worker OOMs once" scenario.

    The plan is picklable (it is shipped to pool workers inside
    :class:`~repro.core.parallel.WorkerConfig`) and holds no mutable
    state; per-write counters live in the :class:`HostFaultInjector`.
    """

    def __init__(self, specs: Iterable[HostFaultSpec], seed: int = 0,
                 targets: Iterable[str] = (),
                 stall_seconds: float = 30.0,
                 disrupt_generations: int | None = None) -> None:
        self.specs = tuple(specs)
        self.seed = int(seed)
        self.targets = tuple(targets)
        if stall_seconds < 0:
            raise FaultConfigError(
                f"stall_seconds must be >= 0, got {stall_seconds}")
        self.stall_seconds = float(stall_seconds)
        self.disrupt_generations = disrupt_generations
        self._rates: dict[HostFaultKind, float] = {}
        for s in self.specs:
            if s.kind in self._rates:
                raise FaultConfigError(
                    f"duplicate host fault kind {s.kind.value!r} in plan"
                )
            self._rates[s.kind] = s.rate

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, seed: int = 0, **kwargs) -> "HostFaultPlan":
        """Parse a spec like ``"torn=0.3,kill=1,enospc"``.

        Each comma-separated item is ``kind=rate``; a bare ``kind``
        means rate 1.0.  Extra keyword arguments (``targets``,
        ``stall_seconds``, ``disrupt_generations``) pass through to the
        constructor.
        """
        known = {k.value: k for k in HostFaultKind}
        specs = []
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            name, _, value = item.partition("=")
            name = name.strip()
            if name not in known:
                raise FaultConfigError(
                    f"unknown host fault kind {name!r}; "
                    f"known: {sorted(known)}"
                )
            try:
                rate = float(value) if value else 1.0
            except ValueError:
                raise FaultConfigError(
                    f"bad rate {value!r} for host fault {name!r}"
                ) from None
            specs.append(HostFaultSpec(known[name], rate))
        if not specs:
            raise FaultConfigError(f"empty host fault spec {text!r}")
        return cls(specs, seed=seed, **kwargs)

    # ------------------------------------------------------------------
    def rate(self, kind: HostFaultKind) -> float:
        return self._rates.get(kind, 0.0)

    def describe(self) -> str:
        body = ", ".join(f"{s.kind.value}={s.rate:g}" for s in self.specs)
        scoped = f" targets={','.join(self.targets)}" if self.targets else ""
        return f"{body} (seed {self.seed}){scoped}"

    def targets_path(self, name: str) -> bool:
        """Whether storage faults apply to a file called ``name``."""
        if not self.targets:
            return True
        return any(fnmatch.fnmatch(name, pat) for pat in self.targets)

    def draw(self, kind: HostFaultKind, *key: object) -> float:
        """Deterministic uniform draw in [0, 1) for (kind, key).

        A stable digest, not ``hash()``: the same plan seed and key
        yield the same decision in every process and every rerun.
        """
        digest = hashlib.blake2b(
            repr((self.seed, kind.value) + key).encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "little") / 2.0 ** 64

    def triggers(self, kind: HostFaultKind, *key: object) -> bool:
        rate = self.rate(kind)
        return rate > 0.0 and self.draw(kind, *key) < rate


def _count_injected(kind: HostFaultKind) -> None:
    reg = get_registry()
    if reg.enabled:
        reg.counter("repro_host_faults_injected_total",
                    "Host faults injected, by kind", ("kind",),
                    scope=SCOPE_PROCESS).inc(1, kind.value)


class HostFaultInjector:
    """The storage-side write filter derived from a plan.

    Holds a per-file-name write counter so repeated writes of the same
    path (a checkpoint rewritten after every cell) draw independent
    decisions, while the first write of any given file is identical
    across processes and reruns.
    """

    def __init__(self, plan: HostFaultPlan) -> None:
        self.plan = plan
        self._write_counts: dict[str, int] = {}

    def filter_write(self, path: Path, text: str) -> str:
        """Mangle or reject one atomic write; the atomicio hook.

        Raises :class:`OSError` for ``enospc``/``eio`` (before any
        temp file is created), returns a truncated payload for
        ``torn``, a payload with one flipped bit for ``bitflip``, and
        the input unchanged otherwise.
        """
        plan = self.plan
        name = Path(path).name
        if not plan.targets_path(name):
            return text
        n = self._write_counts.get(name, 0)
        self._write_counts[name] = n + 1
        if plan.triggers(HostFaultKind.NO_SPACE, name, n):
            _count_injected(HostFaultKind.NO_SPACE)
            raise OSError(errno.ENOSPC,
                          f"injected ENOSPC writing {name} (write {n})")
        if plan.triggers(HostFaultKind.IO_ERROR, name, n):
            _count_injected(HostFaultKind.IO_ERROR)
            raise OSError(errno.EIO,
                          f"injected EIO writing {name} (write {n})")
        if plan.triggers(HostFaultKind.TORN_WRITE, name, n) and text:
            _count_injected(HostFaultKind.TORN_WRITE)
            rng = random.Random(int(plan.draw(
                HostFaultKind.TORN_WRITE, name, n, "cut") * 2**32))
            return text[:rng.randrange(len(text))]
        if plan.triggers(HostFaultKind.BIT_FLIP, name, n) and text:
            _count_injected(HostFaultKind.BIT_FLIP)
            rng = random.Random(int(plan.draw(
                HostFaultKind.BIT_FLIP, name, n, "bit") * 2**32))
            i = rng.randrange(len(text))
            # flip a low bit of one character, keeping it printable
            # ASCII so the damage is content corruption, not a codec
            # error — exactly what a checksum must catch
            flipped = chr((ord(text[i]) ^ (1 << rng.randrange(4))) & 0x7F)
            return text[:i] + flipped + text[i + 1:]
        return text


# ----------------------------------------------------------------------
# Process-wide installation (the storage hook + the plan workers see)
# ----------------------------------------------------------------------
_PLAN: HostFaultPlan | None = None
_INJECTOR: HostFaultInjector | None = None


def install(plan: HostFaultPlan) -> HostFaultInjector:
    """Activate ``plan`` process-wide: register the atomicio write
    filter and make the plan visible to :func:`active_plan` (which is
    how pool workers inherit it via ``WorkerConfig``)."""
    global _PLAN, _INJECTOR
    _PLAN = plan
    _INJECTOR = HostFaultInjector(plan)
    atomicio._WRITE_HOOK = _INJECTOR.filter_write
    return _INJECTOR


def uninstall() -> None:
    """Deactivate host fault injection (the default state)."""
    global _PLAN, _INJECTOR
    _PLAN = None
    _INJECTOR = None
    atomicio._WRITE_HOOK = None


def active_plan() -> HostFaultPlan | None:
    return _PLAN


@contextlib.contextmanager
def installed(plan: HostFaultPlan):
    """Activate ``plan`` for a ``with`` block, restoring the previous
    state on exit (the chaos harness and tests use this)."""
    global _PLAN, _INJECTOR
    prev_plan, prev_injector, prev_hook = \
        _PLAN, _INJECTOR, atomicio._WRITE_HOOK
    injector = install(plan)
    try:
        yield injector
    finally:
        _PLAN = prev_plan
        _INJECTOR = prev_injector
        atomicio._WRITE_HOOK = prev_hook


# ----------------------------------------------------------------------
# Worker-process disruptions (consulted once per pool task)
# ----------------------------------------------------------------------
def maybe_disrupt(plan: HostFaultPlan | None, key: tuple,
                  generation: int) -> None:
    """Apply ``kill``/``stall`` for one worker task.

    ``key`` is the cell task identity (algorithm, input, device) and
    ``generation`` the pool incarnation executing it, so a task
    resubmitted after a pool respawn draws a fresh decision.  A kill is
    a real ``SIGKILL`` to the worker's own pid — the parent sees
    ``BrokenProcessPool``, exactly as it would for the OOM killer.
    ``plan=None`` (no injection installed) is a no-op.
    """
    if plan is None:
        return
    if (plan.disrupt_generations is not None
            and generation >= plan.disrupt_generations):
        return
    if plan.triggers(HostFaultKind.WORKER_KILL, *key, generation):
        _count_injected(HostFaultKind.WORKER_KILL)
        os.kill(os.getpid(), signal.SIGKILL)
    if plan.triggers(HostFaultKind.WORKER_STALL, *key, generation):
        _count_injected(HostFaultKind.WORKER_STALL)
        time.sleep(plan.stall_seconds)


def maybe_disrupt_fleet(plan: HostFaultPlan | None, worker_id: int,
                        key: tuple, generation: int) -> None:
    """Apply ``kill``/``stall`` to one *fleet* worker task.

    The service fleet (:mod:`repro.service.fleet`) runs long-lived
    worker processes rather than pool generations, so the draw is keyed
    on the worker slot id plus the cell identity, and ``generation`` is
    the slot's *respawn count*: with ``disrupt_generations=N`` only the
    first N incarnations of each slot are disrupted — a respawned
    worker picking up a redispatched cell survives, exactly like a
    rebuilt pool.  Kills are a real ``SIGKILL`` to the worker's own
    pid; the supervisor sees the pipe close and fails over.
    """
    if plan is None:
        return
    maybe_disrupt(plan, ("fleet", int(worker_id)) + tuple(key),
                  generation)
