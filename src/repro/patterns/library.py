"""The pattern corpus: racy idioms and their race-free fixes.

Each pattern provides both variants as SIMT kernels plus a result
check.  ``expected_racy`` records whether the *buggy* variant actually
contains a data race: two patterns are intentionally race-free despite
looking suspicious — they exist to catch detector false positives
(Section IV: "iGuard seems to ignore the implicit barrier between
kernel launches, causing false positive reports").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.variants import Variant
from repro.errors import DeadlockError, ReproError
from repro.gpu.accesses import AccessKind, DType, RMWOp
from repro.gpu.atomics import atomic_add, atomic_read, atomic_write
from repro.gpu.interleave import AdversarialScheduler
from repro.gpu.memory import GlobalMemory
from repro.gpu.racecheck import RaceDetector
from repro.gpu.simt import SimtExecutor


class PatternOutcome(enum.Enum):
    """What running one pattern variant produced."""

    CORRECT = "correct"          # result check passed
    WRONG_RESULT = "wrong"       # completed with a bad result
    LIVELOCK = "livelock"        # never terminated (stale polling)


@dataclass(frozen=True)
class Pattern:
    """One microbenchmark: a racy idiom and its fix.

    ``build(variant)`` returns ``(kernel, num_threads, setup, check)``
    where ``setup(mem)`` allocates and returns the kernel arguments and
    ``check(mem, handles)`` returns True iff the result is correct.
    """

    name: str
    description: str
    expected_racy: bool  # does the BASELINE variant contain a race?
    build: Callable


def _pattern(name, description, expected_racy=True):
    def register(fn):
        PATTERNS[name] = Pattern(name, description, expected_racy, fn)
        return fn
    return register


PATTERNS: dict[str, Pattern] = {}

N_THREADS = 16


# ----------------------------------------------------------------------
@_pattern("lost_update",
          "plain read-modify-write increments lose updates; atomicAdd "
          "does not")
def _lost_update(variant: Variant):
    def setup(mem):
        return (mem.alloc("ctr", 1, DType.I32),)

    if variant is Variant.BASELINE:
        def kernel(ctx, ctr):
            v = yield ctx.load(ctr, 0, AccessKind.VOLATILE)
            yield ctx.store(ctr, 0, v + 1, AccessKind.VOLATILE)
    else:
        def kernel(ctx, ctr):
            yield from atomic_add(ctx, ctr, 0, 1)

    def check(mem, handles):
        return mem.element_read(handles[0], 0) == N_THREADS

    return kernel, N_THREADS, setup, check


# ----------------------------------------------------------------------
@_pattern("flag_spin",
          "polling a plain flag register-caches the first read and "
          "spins forever (Fig. 1's T4); an atomic poll terminates")
def _flag_spin(variant: Variant):
    def setup(mem):
        return (mem.alloc("flag", 1, DType.I32),)

    if variant is Variant.BASELINE:
        def kernel(ctx, flag):
            if ctx.tid == 0:
                yield ctx.store(flag, 0, 1, AccessKind.PLAIN)
            else:
                while True:
                    v = yield ctx.load(flag, 0, AccessKind.PLAIN)
                    if v:
                        return
    else:
        def kernel(ctx, flag):
            if ctx.tid == 0:
                yield from atomic_write(ctx, flag, 0, 1)
            else:
                while True:
                    v = yield from atomic_read(ctx, flag, 0)
                    if v:
                        return

    def check(mem, handles):
        return mem.element_read(handles[0], 0) == 1

    return kernel, 2, setup, check


# ----------------------------------------------------------------------
@_pattern("torn_wide_write",
          "a plain 64-bit store tears into two words; a reader can see "
          "a chimera (Fig. 1's T1/T2)")
def _torn_wide_write(variant: Variant):
    def setup(mem):
        wide = mem.alloc("wide", 1, DType.I64, fill=-1)
        seen = mem.alloc("seen", 1, DType.I64)
        return wide, seen

    if variant is Variant.BASELINE:
        def kernel(ctx, wide, seen):
            if ctx.tid == 0:
                yield ctx.store(wide, 0, 0, AccessKind.PLAIN)
            else:
                v = yield ctx.load(wide, 0, AccessKind.PLAIN)
                yield ctx.store(seen, 0, v, AccessKind.PLAIN)
    else:
        def kernel(ctx, wide, seen):
            if ctx.tid == 0:
                yield from atomic_write(ctx, wide, 0, 0)
            else:
                v = yield from atomic_read(ctx, wide, 0)
                yield ctx.store(seen, 0, v, AccessKind.PLAIN)

    def check(mem, handles):
        return mem.element_read(handles[1], 0) in (-1, 0)

    return kernel, 2, setup, check


# ----------------------------------------------------------------------
@_pattern("publish_payload",
          "publishing a payload through a plain flag lets the flag "
          "write overtake the data write; atomics keep the order")
def _publish_payload(variant: Variant):
    def setup(mem):
        buf = mem.alloc("buf", 2, DType.I32)  # [0] = flag, [1] = data
        got = mem.alloc("got", 1, DType.I32, fill=99)
        return buf, got

    if variant is Variant.BASELINE:
        def kernel(ctx, buf, got):
            if ctx.tid == 0:
                yield ctx.store(buf, 1, 99, AccessKind.PLAIN)
                yield ctx.store(buf, 0, 1, AccessKind.PLAIN)
            else:
                flag = yield ctx.load(buf, 0, AccessKind.VOLATILE)
                if flag:
                    v = yield ctx.load(buf, 1, AccessKind.VOLATILE)
                    yield ctx.store(got, 0, v, AccessKind.PLAIN)
    else:
        def kernel(ctx, buf, got):
            if ctx.tid == 0:
                yield from atomic_write(ctx, buf, 1, 99)
                yield from atomic_write(ctx, buf, 0, 1)
            else:
                flag = yield from atomic_read(ctx, buf, 0)
                if flag:
                    v = yield from atomic_read(ctx, buf, 1)
                    yield ctx.store(got, 0, v, AccessKind.PLAIN)

    def check(mem, handles):
        return mem.element_read(handles[1], 0) == 99

    return kernel, 2, setup, check


# ----------------------------------------------------------------------
@_pattern("byte_neighbors",
          "threads write ADJACENT bytes of one word — looks racy at "
          "word granularity but is race-free (distinct locations)",
          expected_racy=False)
def _byte_neighbors(variant: Variant):
    del variant  # both variants identical: there is no race to remove

    def setup(mem):
        return (mem.alloc("bytes", 4, DType.U8),)

    def kernel(ctx, arr):
        yield ctx.store(arr, ctx.tid, ctx.tid + 1, AccessKind.PLAIN)

    def check(mem, handles):
        return np.array_equal(mem.download(handles[0]), [1, 2, 3, 4])

    return kernel, 4, setup, check


# ----------------------------------------------------------------------
@_pattern("kernel_boundary",
          "a write in one launch read by the next launch — ordered by "
          "the implicit barrier between kernels (iGuard's false "
          "positive), race-free",
          expected_racy=False)
def _kernel_boundary(variant: Variant):
    del variant

    def setup(mem):
        return (mem.alloc("cell", 2, DType.I32),)

    def kernel(ctx, cell):
        # phase is communicated via cell[1] set by the host between
        # launches; see run_pattern's two-launch driver
        phase = yield ctx.load(cell, 1, AccessKind.PLAIN)
        if phase == 0 and ctx.tid == 0:
            yield ctx.store(cell, 0, 41, AccessKind.PLAIN)
        elif phase == 1 and ctx.tid == 1:
            v = yield ctx.load(cell, 0, AccessKind.PLAIN)
            yield ctx.store(cell, 0, v + 1, AccessKind.PLAIN)

    def check(mem, handles):
        return mem.element_read(handles[0], 0) == 42

    return kernel, 2, setup, check


# ----------------------------------------------------------------------
@_pattern("missing_barrier",
          "a block reduction that forgets __syncthreads() races on the "
          "shared partial sums; the fixed version synchronizes")
def _missing_barrier(variant: Variant):
    n = 8

    def setup(mem):
        vals = mem.alloc("vals", n, DType.I32)
        mem.upload(vals, np.arange(1, n + 1))
        out = mem.alloc("out", 1, DType.I32)
        return vals, out

    insert_barrier = variant is Variant.RACE_FREE

    def kernel(ctx, vals, out):
        # tree reduction in place: stride halving
        stride = n // 2
        while stride:
            if ctx.tid < stride:
                a = yield ctx.load(vals, ctx.tid, AccessKind.PLAIN)
                b = yield ctx.load(vals, ctx.tid + stride,
                                   AccessKind.PLAIN)
                yield ctx.store(vals, ctx.tid, a + b, AccessKind.PLAIN)
            if insert_barrier:
                yield ctx.barrier()
            stride //= 2
        if ctx.tid == 0:
            total = yield ctx.load(vals, 0, AccessKind.PLAIN)
            yield ctx.store(out, 0, total, AccessKind.PLAIN)

    def check(mem, handles):
        return mem.element_read(handles[1], 0) == n * (n + 1) // 2

    return kernel, n, setup, check


# ----------------------------------------------------------------------

@dataclass
class PatternRun:
    """Result of running one pattern variant under one schedule."""

    pattern: str
    variant: Variant
    outcome: PatternOutcome
    races: int


def get_pattern(name: str) -> Pattern:
    try:
        return PATTERNS[name]
    except KeyError:
        raise ReproError(
            f"unknown pattern {name!r}; known: {sorted(PATTERNS)}"
        ) from None


def execute_pattern(name: str, kernel: Callable, n_threads: int,
                    executor: SimtExecutor, handles: tuple) -> None:
    """Run one pattern's launch sequence on ``executor``, including any
    host-side actions between launches.  Shared by :func:`run_pattern`
    and the :mod:`repro.check` harness so multi-launch patterns (the
    ``kernel_boundary`` false-positive probe) behave identically under
    stress seeds and under systematic exploration."""
    block_dim = max(1, n_threads)
    if name == "kernel_boundary":
        # two launches with a host-side phase flip in between
        executor.memory.element_write(handles[0], 1, 0)
        executor.launch(kernel, n_threads, *handles, block_dim=block_dim)
        executor.memory.element_write(handles[0], 1, 1)
        executor.launch(kernel, n_threads, *handles, block_dim=block_dim)
    else:
        executor.launch(kernel, n_threads, *handles, block_dim=block_dim)


def run_pattern(name: str, variant: Variant, seed: int = 0,
                max_steps: int = 300_000) -> PatternRun:
    """Execute one pattern variant under an adversarial schedule and
    race-check it."""
    pattern = get_pattern(name)
    kernel, n_threads, setup, check = pattern.build(variant)
    mem = GlobalMemory()
    handles = setup(mem)
    ex = SimtExecutor(mem, scheduler=AdversarialScheduler(seed),
                      max_steps=max_steps)
    try:
        execute_pattern(name, kernel, n_threads, ex, handles)
    except DeadlockError:
        return PatternRun(name, variant, PatternOutcome.LIVELOCK,
                          len(RaceDetector().check(ex)))
    races = len(RaceDetector().check(ex))
    outcome = (PatternOutcome.CORRECT if check(mem, handles)
               else PatternOutcome.WRONG_RESULT)
    return PatternRun(name, variant, outcome, races)
