"""Bug-variant generation by incomplete race removal (the Indigo3 idea).

Indigo3 (Section III) derives tens of thousands of *buggy* code
variants from a handful of graph algorithms by systematically omitting
synchronization, then uses them to evaluate verification tools.  This
module does the same over our access plans: every proper subset of an
algorithm's racy sites yields a partially converted plan — a code
variant whose remaining unprotected sites still race.

The corpus serves two purposes:

* **detector evaluation** — a sound dynamic detector must flag every
  partial variant and stay silent only on the full conversion;
* **migration analysis** — ordering the variants by simulated runtime
  shows what an incremental race-removal effort costs at each step
  (see :func:`migration_path`).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

from repro.core.transform import AccessPlan, remove_races_at
from repro.core.variants import Variant, get_algorithm
from repro.errors import StudyError
from repro.gpu.device import DeviceSpec
from repro.gpu.timing import TimingModel
from repro.perf.engine import Recorder, algorithm_plan


@dataclass(frozen=True)
class PlanVariant:
    """One generated variant: which racy sites were converted."""

    algorithm: str
    converted: tuple[str, ...]
    plan: AccessPlan

    @property
    def is_complete(self) -> bool:
        return not self.plan.has_races

    @property
    def label(self) -> str:
        if not self.converted:
            return "baseline"
        if self.is_complete:
            return "race-free"
        return "+" + ",+".join(s.split(".")[-1] for s in self.converted)


def enumerate_variants(plan: AccessPlan,
                       max_variants: int = 64) -> Iterator[PlanVariant]:
    """Yield the baseline, every partial conversion (subset of racy
    sites), and the full conversion — at most ``max_variants`` total,
    smallest subsets first (like Indigo3's single-omission variants)."""
    racy = [s.name for s in plan.racy_sites()]
    if not racy:
        raise StudyError(
            f"plan for {plan.algorithm} has no racy sites to mutate"
        )
    emitted = 0
    for size in range(len(racy) + 1):
        for subset in combinations(racy, size):
            if emitted >= max_variants:
                return
            yield PlanVariant(plan.algorithm, subset,
                              remove_races_at(plan, set(subset)))
            emitted += 1


@dataclass(frozen=True)
class MigrationStep:
    """One point on the incremental-conversion cost curve."""

    variant: PlanVariant
    runtime_ms: float
    remaining_racy_sites: int


def migration_path(algorithm_key: str, graph, device: DeviceSpec,
                   seed: int = 7) -> list[MigrationStep]:
    """The greedy cheapest-next-site conversion order.

    Starting from the baseline, repeatedly converts the single racy
    site whose conversion costs the least runtime, until the code is
    race-free.  The result quantifies where the conversion budget goes
    (for CC: almost entirely into the jump reads).
    """
    algo = get_algorithm(algorithm_key)
    plan = algorithm_plan(algo)
    racy = [s.name for s in plan.racy_sites()]
    if not racy:
        raise StudyError(f"{algorithm_key} has no races to migrate away")

    def runtime(p: AccessPlan) -> float:
        recorder = Recorder(p, Variant.BASELINE, device)
        algo.perf_runner(graph, recorder, seed)
        return TimingModel(device).estimate_ms(recorder.stats)

    converted: list[str] = []
    steps = [MigrationStep(
        PlanVariant(algorithm_key, (), plan), runtime(plan), len(racy))]
    while len(converted) < len(racy):
        candidates = []
        for name in racy:
            if name in converted:
                continue
            trial = remove_races_at(plan, set(converted) | {name})
            candidates.append((runtime(trial), name, trial))
        candidates.sort(key=lambda c: (c[0], c[1]))
        cost, name, trial = candidates[0]
        converted.append(name)
        steps.append(MigrationStep(
            PlanVariant(algorithm_key, tuple(converted), trial),
            cost, len(racy) - len(converted)))
    return steps
