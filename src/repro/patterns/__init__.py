"""Parallel code-pattern microbenchmarks (the Indigo lineage).

The paper's group maintains the Indigo/Indigo3 suites of small parallel
code patterns with and without data races, used to evaluate verification
tools (Section III).  This package provides the same kind of corpus for
the simulated GPU: each :class:`~repro.patterns.library.Pattern` pairs a
racy kernel with its race-free fix, plus two deliberately *race-free*
patterns that naive detectors misflag (byte neighbors, kernel-boundary
ordering — the false-positive sources Section IV attributes to the real
tools).
"""

from repro.patterns.library import (
    PATTERNS,
    Pattern,
    PatternOutcome,
    execute_pattern,
    get_pattern,
    run_pattern,
)

__all__ = ["PATTERNS", "Pattern", "PatternOutcome", "execute_pattern",
           "get_pattern", "run_pattern"]
