"""repro — reproduction of "Performance Impact of Removing Data Races
from GPU Graph Analytics Programs" (IISWC 2024).

Public API tour
---------------

Graphs::

    from repro.graphs import CSRGraph, generators, load_suite_graph

Simulated GPU substrate::

    from repro.gpu import GlobalMemory, SimtExecutor, RaceDetector
    from repro.gpu.device import PAPER_GPUS

Algorithms (each with baseline and race-free variants)::

    from repro.algorithms import cc, gc, mis, mst, scc, apsp

The study (Section V methodology)::

    from repro import Study, Variant
    study = Study(reps=9)
    cell = study.speedup("mis", "amazon0601", "titanv")
    print(cell.speedup)   # > 1 means the race-free code is faster

Resilient sweeps (fault injection, isolation, checkpoint/resume)::

    from repro import ResilientStudy
    from repro.gpu import FaultPlan
    study = ResilientStudy(reps=9, retries=2, checkpoint="sweep.json",
                           faults=FaultPlan.parse("tear=0.3,abort=0.1"))
    result = study.sweep("titanv", ["cc", "mis"], ["internet"])

Host-fault chaos (see docs/robustness.md, "Host faults")::

    from repro import HostFaultPlan
    from repro.core import hostfaults
    plan = HostFaultPlan.parse("kill=1.0,torn=0.4",
                               targets=("trace-*.json",),
                               disrupt_generations=1)
    with hostfaults.installed(plan):
        ResilientStudy(reps=3, checkpoint="sweep.json").sweep(
            "titanv", ["cc", "mis"], ["internet"], jobs=4)

Telemetry (off by default; see docs/observability.md)::

    from repro import telemetry
    with telemetry.session() as (registry, spans):
        Study(reps=3).speedup("cc", "internet", "titanv")
        print(telemetry.export.to_console(registry))
"""

from repro.core.resilience import (
    CellBudget,
    CellFailure,
    ResilientStudy,
    SweepResult,
)
from repro.core.hostfaults import HostFaultKind, HostFaultPlan
from repro.core.study import RunResult, SpeedupCell, Study
from repro.core.transform import AccessPlan, AccessSite, remove_races
from repro.core.variants import Variant, get_algorithm, list_algorithms
from repro.errors import ReproError
from repro.gpu.faults import FaultPlan
from repro.perf.trace import TraceCache
from repro import telemetry

__version__ = "1.0.0"

__all__ = [
    "Study",
    "ResilientStudy",
    "CellBudget",
    "CellFailure",
    "SweepResult",
    "FaultPlan",
    "HostFaultKind",
    "HostFaultPlan",
    "TraceCache",
    "RunResult",
    "SpeedupCell",
    "Variant",
    "AccessPlan",
    "AccessSite",
    "remove_races",
    "get_algorithm",
    "list_algorithms",
    "ReproError",
    "telemetry",
    "__version__",
]
