"""repro — reproduction of "Performance Impact of Removing Data Races
from GPU Graph Analytics Programs" (IISWC 2024).

Public API tour
---------------

Graphs::

    from repro.graphs import CSRGraph, generators, load_suite_graph

Simulated GPU substrate::

    from repro.gpu import GlobalMemory, SimtExecutor, RaceDetector
    from repro.gpu.device import PAPER_GPUS

Algorithms (each with baseline and race-free variants)::

    from repro.algorithms import cc, gc, mis, mst, scc, apsp

The study (Section V methodology)::

    from repro import Study, Variant
    study = Study(reps=9)
    cell = study.speedup("mis", "amazon0601", "titanv")
    print(cell.speedup)   # > 1 means the race-free code is faster
"""

from repro.core.study import RunResult, SpeedupCell, Study
from repro.core.transform import AccessPlan, AccessSite, remove_races
from repro.core.variants import Variant, get_algorithm, list_algorithms
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Study",
    "RunResult",
    "SpeedupCell",
    "Variant",
    "AccessPlan",
    "AccessSite",
    "remove_races",
    "get_algorithm",
    "list_algorithms",
    "ReproError",
    "__version__",
]
