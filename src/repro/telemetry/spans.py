"""Hierarchical spans: wall-clock *and* simulated-clock timing.

A span covers one nested unit of work — study → sweep cell →
record/replay → kernel launch — with a wall-clock duration (what the
process spent) and an optional *simulated* duration (what the modelled
GPU spent, the quantity the paper reports).  The two clocks answer
different questions: "where does the harness spend its time" vs "where
does the simulated hardware spend its time".

Span ids are **stable**: derived from the parent id, the span name, and
a per-(parent, name) sequence number — never from wall time or
randomness — so two runs of the same workload produce the same span
tree with the same ids, and a diff of two telemetry exports lines up
span for span.

Usage::

    from repro.telemetry import span

    with span("sweep.cell", algorithm="cc", input="internet") as sp:
        ...
        sp.set_sim_ms(result.median_ms)

Like the metrics registry, the recorder is disabled by default and the
disabled path is a no-op context manager singleton.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable

__all__ = [
    "Span",
    "SpanRecorder",
    "NullSpanRecorder",
    "NULL_SPANS",
    "get_spans",
    "enable",
    "disable",
]

ROOT_ID = "root"


class Span:
    """One finished (or in-flight) span."""

    __slots__ = ("span_id", "parent_id", "name", "start_s", "duration_s",
                 "sim_ms", "attrs")

    def __init__(self, span_id: str, parent_id: str | None, name: str,
                 start_s: float) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.duration_s: float | None = None
        self.sim_ms: float | None = None
        self.attrs: dict[str, object] = {}

    # -- the handle API available inside the ``with`` block -----------
    def set(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self

    def set_sim_ms(self, sim_ms: float) -> "Span":
        """Attach the simulated-clock duration of this unit of work."""
        self.sim_ms = float(sim_ms)
        return self

    def to_dict(self) -> dict:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "sim_ms": self.sim_ms,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        sp = cls(data["id"], data.get("parent"), data["name"],
                 float(data.get("start_s", 0.0)))
        sp.duration_s = data.get("duration_s")
        sp.sim_ms = data.get("sim_ms")
        sp.attrs = dict(data.get("attrs", {}))
        return sp


def stable_span_id(parent_id: str | None, name: str, seq: int) -> str:
    """Deterministic span id from position in the call tree."""
    raw = f"{parent_id or ROOT_ID}/{name}#{seq}".encode()
    return hashlib.blake2s(raw, digest_size=6).hexdigest()


class _SpanContext:
    """Context manager wrapping one span's lifetime."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "SpanRecorder", span: Span) -> None:
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._recorder._finish(self._span)


class SpanRecorder:
    """Records a tree of spans with stable ids.

    ``clock`` is injectable (monotonic seconds) so exporter golden
    tests can produce byte-stable output.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter
                 ) -> None:
        self.clock = clock
        self.finished: list[Span] = []
        self._stack: list[Span] = []
        self._seq: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> _SpanContext:
        parent = self._stack[-1].span_id if self._stack else None
        seq_key = (parent or ROOT_ID, name)
        seq = self._seq.get(seq_key, 0)
        self._seq[seq_key] = seq + 1
        sp = Span(stable_span_id(parent, name, seq), parent, name,
                  self.clock())
        if attrs:
            sp.attrs.update(attrs)
        self._stack.append(sp)
        return _SpanContext(self, sp)

    def _finish(self, sp: Span) -> None:
        sp.duration_s = self.clock() - sp.start_s
        # unwind to (and including) sp — robust to a mid-span exception
        # leaving deeper entries on the stack
        while self._stack:
            top = self._stack.pop()
            if top is sp:
                break
        self.finished.append(sp)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        self.finished.clear()
        self._stack.clear()
        self._seq.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """Finished spans as picklable dicts (finish order)."""
        return [sp.to_dict() for sp in self.finished]

    def merge(self, spans: list[dict], worker: str | None = None) -> None:
        """Append shipped spans (e.g. from a pool worker).  ``worker``
        tags each appended span for attribution."""
        for data in spans:
            sp = Span.from_dict(data)
            if worker is not None:
                sp.attrs.setdefault("worker", worker)
            self.finished.append(sp)


class NullSpanRecorder:
    """Disabled recorder: ``span()`` returns a shared no-op context."""

    enabled = False
    finished: list[Span] = []

    def span(self, name: str, **attrs: object) -> "_NullContext":
        return _NULL_CONTEXT

    @property
    def current(self) -> None:
        return None

    def snapshot(self) -> list[dict]:
        return []

    def merge(self, spans: list[dict], worker: str | None = None) -> None:
        pass

    def clear(self) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def set_sim_ms(self, sim_ms: float) -> "_NullSpan":
        return self


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullContext()

NULL_SPANS = NullSpanRecorder()

_SPANS: SpanRecorder | NullSpanRecorder = NULL_SPANS


def get_spans() -> SpanRecorder | NullSpanRecorder:
    """The active span recorder (null recorder when telemetry is off)."""
    return _SPANS


def enable(recorder: SpanRecorder | None = None) -> SpanRecorder:
    global _SPANS
    _SPANS = recorder if recorder is not None else SpanRecorder()
    return _SPANS


def disable() -> None:
    global _SPANS
    _SPANS = NULL_SPANS
