"""Telemetry exporters: JSONL, Prometheus text format, console tables.

Three renderings of one registry:

* **JSONL** — one JSON object per line, self-describing, the format the
  CLI's ``--telemetry out.jsonl`` writes and ``repro metrics
  summarize`` reads back.  Line 1 is a header record; metric lines
  carry the family metadata inline so a consumer can process the file
  streaming, without buffering the whole registry.
* **Prometheus text format** (``text/plain; version=0.0.4``) — ``#
  HELP``/``# TYPE`` comments, escaped label values, and the cumulative
  ``_bucket{le=...}``/``_sum``/``_count`` expansion for histograms, so
  the output scrapes cleanly into any Prometheus-compatible stack.
* **console** — an aligned markdown table (the house format of the
  benchmark harness) for eyeballing a run.

The validators (:func:`validate_jsonl_lines`,
:func:`validate_prometheus_text`) are used by the exporter golden tests
and by ``tools/validate_telemetry.py`` in CI; they live here so the
schema and its checker cannot drift apart.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.telemetry.metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    SNAPSHOT_FORMAT,
    MetricsRegistry,
)
from repro.telemetry.spans import SpanRecorder

__all__ = [
    "metric_lines",
    "span_lines",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "to_prometheus",
    "to_console",
    "validate_jsonl_lines",
    "validate_prometheus_text",
    "summarize",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _num(value: float) -> float | int:
    """Ints stay ints in JSON (access counts are discrete events)."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def metric_lines(registry) -> list[dict]:
    """One dict per (family, labelset) sample."""
    lines: list[dict] = []
    for fam in registry.families():
        for labels, value in fam.samples():
            record: dict = {
                "type": "metric",
                "name": fam.name,
                "kind": fam.kind,
                "scope": fam.scope,
                "labels": dict(zip(fam.labelnames, labels)),
            }
            if fam.help:
                record["help"] = fam.help
            if fam.kind == HISTOGRAM:
                record["buckets"] = list(fam.buckets)
                record["counts"] = list(value.counts)
                record["sum"] = _num(value.sum)
                record["count"] = value.count
            else:
                record["value"] = _num(value)
            lines.append(record)
    return lines


def span_lines(spans) -> list[dict]:
    return [dict(sp, type="span") for sp in spans.snapshot()]


def to_jsonl(registry, spans=None) -> str:
    """The full JSONL document (header + metrics + spans)."""
    records: list[dict] = [{"type": "header", "format": SNAPSHOT_FORMAT,
                            "producer": "repro.telemetry"}]
    records.extend(metric_lines(registry))
    if spans is not None:
        records.extend(span_lines(spans))
    return "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"


def write_jsonl(path: str | Path, registry, spans=None) -> None:
    from repro.utils.atomicio import atomic_write_text

    atomic_write_text(path, to_jsonl(registry, spans))


def read_jsonl(path: str | Path) -> tuple[list[dict], list[dict]]:
    """Parse a telemetry JSONL file into (metric records, span records).

    Raises ``ValueError`` on schema violations (the CI validator's
    failure mode).
    """
    metrics: list[dict] = []
    spans: list[dict] = []
    text = Path(path).read_text()
    validate_jsonl_lines(text.splitlines())
    for line in text.splitlines():
        record = json.loads(line)
        if record["type"] == "metric":
            metrics.append(record)
        elif record["type"] == "span":
            spans.append(record)
    return metrics, spans


def validate_jsonl_lines(lines: list[str]) -> int:
    """Schema-check a telemetry JSONL document; returns records seen.

    Checks: a leading header with a known format version, every line
    valid JSON with a known ``type``, metric lines carrying the fields
    their kind requires, histogram bucket arrays consistent, and span
    lines with id/name/parent linkage fields present.
    """
    lines = [ln for ln in lines if ln.strip()]
    if not lines:
        raise ValueError("empty telemetry file")
    header = json.loads(lines[0])
    if header.get("type") != "header":
        raise ValueError("first record must be the header")
    if header.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"unsupported telemetry format {header.get('format')!r}")
    for i, line in enumerate(lines[1:], start=2):
        record = json.loads(line)
        rtype = record.get("type")
        if rtype == "metric":
            _validate_metric_record(record, i)
        elif rtype == "span":
            _validate_span_record(record, i)
        elif rtype == "header":
            raise ValueError(f"line {i}: duplicate header")
        else:
            raise ValueError(f"line {i}: unknown record type {rtype!r}")
    return len(lines)


def _validate_metric_record(record: dict, lineno: int) -> None:
    for field in ("name", "kind", "scope", "labels"):
        if field not in record:
            raise ValueError(f"line {lineno}: metric missing {field!r}")
    kind = record["kind"]
    if kind in (COUNTER, GAUGE):
        if not isinstance(record.get("value"), (int, float)):
            raise ValueError(
                f"line {lineno}: {kind} needs a numeric 'value'")
    elif kind == HISTOGRAM:
        buckets = record.get("buckets")
        counts = record.get("counts")
        if not isinstance(buckets, list) or not isinstance(counts, list):
            raise ValueError(
                f"line {lineno}: histogram needs 'buckets' and 'counts'")
        if len(counts) != len(buckets) + 1:
            raise ValueError(
                f"line {lineno}: histogram needs len(buckets)+1 counts")
        if sum(counts) != record.get("count"):
            raise ValueError(
                f"line {lineno}: histogram counts do not sum to 'count'")
    else:
        raise ValueError(f"line {lineno}: unknown metric kind {kind!r}")
    if not isinstance(record["labels"], dict):
        raise ValueError(f"line {lineno}: labels must be an object")


def _validate_span_record(record: dict, lineno: int) -> None:
    for field in ("id", "name"):
        if field not in record:
            raise ValueError(f"line {lineno}: span missing {field!r}")
    if "parent" not in record:
        raise ValueError(f"line {lineno}: span missing 'parent' linkage")


# ----------------------------------------------------------------------
# Prometheus text format 0.0.4
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


def _labels_text(names: tuple[str, ...], values: tuple[str, ...],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    pairs += [f'{n}="{_escape_label(v)}"' for n, v in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def to_prometheus(registry) -> str:
    """Render the registry in Prometheus exposition format 0.0.4."""
    out: list[str] = []
    for fam in registry.families():
        if fam.help:
            out.append(f"# HELP {fam.name} {_escape_help(fam.help)}")
        out.append(f"# TYPE {fam.name} {fam.kind}")
        for labels, value in fam.samples():
            if fam.kind == HISTOGRAM:
                cumulative = 0
                for bound, count in zip(fam.buckets, value.counts):
                    cumulative += count
                    lt = _labels_text(fam.labelnames, labels,
                                      (("le", _format_value(float(bound))),))
                    out.append(f"{fam.name}_bucket{lt} {cumulative}")
                cumulative += value.counts[-1]
                lt = _labels_text(fam.labelnames, labels, (("le", "+Inf"),))
                out.append(f"{fam.name}_bucket{lt} {cumulative}")
                base = _labels_text(fam.labelnames, labels)
                out.append(f"{fam.name}_sum{base} "
                           f"{_format_value(value.sum)}")
                out.append(f"{fam.name}_count{base} {value.count}")
            else:
                lt = _labels_text(fam.labelnames, labels)
                out.append(f"{fam.name}{lt} {_format_value(value)}")
    return "\n".join(out) + "\n" if out else ""


def validate_prometheus_text(text: str) -> int:
    """Parse-check Prometheus text output; returns sample lines seen.

    A minimal strict parser for what :func:`to_prometheus` can emit:
    HELP/TYPE comments, metric lines ``name{labels} value``, balanced
    quoting, numeric values, and histogram bucket monotonicity.
    """
    samples = 0
    typed: dict[str, str] = {}
    bucket_track: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 and line.startswith("# HELP "):
                raise ValueError(f"line {lineno}: malformed HELP")
            if line.startswith("# TYPE "):
                if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary",
                        "untyped"):
                    raise ValueError(f"line {lineno}: malformed TYPE")
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment form")
        name, labels, value = _parse_sample_line(line, lineno)
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in typed:
                base = name[:-len(suffix)]
        if base not in typed:
            raise ValueError(
                f"line {lineno}: sample {name!r} without a TYPE line")
        if name.endswith("_bucket") and typed.get(base) == "histogram":
            series = name + json.dumps(
                {k: v for k, v in labels.items() if k != "le"},
                sort_keys=True)
            prev = bucket_track.get(series, -math.inf)
            if value < prev:
                raise ValueError(
                    f"line {lineno}: histogram buckets not cumulative")
            bucket_track[series] = value
        samples += 1
    if samples == 0:
        raise ValueError("no samples in prometheus output")
    return samples


def _parse_sample_line(line: str, lineno: int
                       ) -> tuple[str, dict[str, str], float]:
    name = line
    labels: dict[str, str] = {}
    rest = line
    if "{" in line:
        name, _, rest = line.partition("{")
        body, closed, rest = rest.partition("}")
        if not closed:
            raise ValueError(f"line {lineno}: unbalanced braces")
        for pair in _split_label_pairs(body, lineno):
            key, eq, raw = pair.partition("=")
            if not eq or not (raw.startswith('"') and raw.endswith('"')):
                raise ValueError(f"line {lineno}: malformed label {pair!r}")
            labels[key] = raw[1:-1]
        rest = rest.strip()
    else:
        name, _, rest = line.partition(" ")
    name = name.strip()
    if not name.replace("_", "").replace(":", "").isalnum():
        raise ValueError(f"line {lineno}: invalid metric name {name!r}")
    value_text = rest.strip()
    try:
        value = float(value_text.replace("+Inf", "inf"))
    except ValueError:
        raise ValueError(
            f"line {lineno}: non-numeric value {value_text!r}") from None
    return name, labels, value


def _split_label_pairs(body: str, lineno: int) -> list[str]:
    pairs: list[str] = []
    depth_quote = False
    current = ""
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == '"' and (i == 0 or body[i - 1] != "\\"):
            depth_quote = not depth_quote
        if ch == "," and not depth_quote:
            if current:
                pairs.append(current)
            current = ""
        else:
            current += ch
        i += 1
    if depth_quote:
        raise ValueError(f"line {lineno}: unterminated label quote")
    if current:
        pairs.append(current)
    return pairs


# ----------------------------------------------------------------------
# Console
# ----------------------------------------------------------------------
def to_console(registry) -> str:
    """The registry as an aligned markdown table."""
    from repro.utils.tables import format_table

    rows = []
    for fam in registry.families():
        for labels, value in fam.samples():
            label_text = ",".join(
                f"{n}={v}" for n, v in zip(fam.labelnames, labels))
            if fam.kind == HISTOGRAM:
                shown = (f"n={value.count} sum={_num(value.sum)} "
                         f"mean={value.sum / max(1, value.count):.4g}")
            else:
                shown = str(_num(value))
            rows.append([fam.name, fam.kind, fam.scope, label_text, shown])
    return format_table(["Metric", "Kind", "Scope", "Labels", "Value"],
                        rows)


def summarize(metrics: list[dict], spans: list[dict]) -> str:
    """Human summary of a parsed JSONL export (``repro metrics
    summarize``): every metric sample, then a per-name span rollup."""
    from repro.utils.tables import format_table

    rows = []
    for m in sorted(metrics, key=lambda m: (m["name"],
                                            sorted(m["labels"].items()))):
        label_text = ",".join(f"{k}={v}"
                              for k, v in sorted(m["labels"].items()))
        if m["kind"] == HISTOGRAM:
            shown = (f"n={m['count']} sum={m['sum']} "
                     f"mean={m['sum'] / max(1, m['count']):.4g}")
        else:
            shown = str(m["value"])
        rows.append([m["name"], m["kind"], m["scope"], label_text, shown])
    out = [format_table(["Metric", "Kind", "Scope", "Labels", "Value"],
                        rows)]
    if spans:
        rollup: dict[str, list[float]] = {}
        sim: dict[str, float] = {}
        for sp in spans:
            rollup.setdefault(sp["name"], []).append(
                float(sp.get("duration_s") or 0.0))
            if sp.get("sim_ms") is not None:
                sim[sp["name"]] = sim.get(sp["name"], 0.0) + sp["sim_ms"]
        span_rows = [
            [name, len(durs), f"{sum(durs):.4f}",
             f"{sim[name]:.4f}" if name in sim else "-"]
            for name, durs in sorted(rollup.items())
        ]
        out.append("")
        out.append(format_table(
            ["Span", "Count", "Wall s", "Sim ms"], span_rows))
    return "\n".join(out)
