"""Process-local metrics: labelled counters, gauges, and histograms.

The registry is the run-wide, machine-readable account of what the
stack did — the observability analog of the paper's profiling argument
("Profiling the two code versions revealed that the baseline code has a
much higher L1 hit rate ..." — Section VI.A).  Instrumentation sites
throughout the package fetch the active registry with
:func:`get_registry` and emit through it; the exporters in
:mod:`repro.telemetry.export` render it as JSONL, Prometheus text, or a
console table.

Disabled is the default, and the disabled path is a true no-op: the
module-level :data:`NULL_REGISTRY` hands back the shared
:data:`NULL_FAMILY` singleton, whose ``inc``/``set``/``observe`` do
nothing and allocate nothing, so study results (and their saved JSON
and checkpoints) are bit-identical with telemetry off.

Metric scopes
-------------

Every family declares a *scope*:

* ``sim`` — derived solely from the simulated execution (access
  counts, hit rates, rounds, cell outcomes).  Sim-scope metrics are
  deterministic: a parallel (``jobs=N``) sweep's merged registry equals
  the serial registry exactly, because every sim-scope sample is
  labelled at cell granularity (algorithm/input/device/variant) and
  counter sums of whole numbers are exact in floating point.
* ``process`` — operational facts of *this* process (trace-cache hits,
  wall-clock spans, worker attribution) that legitimately differ
  between serial and parallel execution.

``snapshot(scope="sim")`` filters accordingly; the determinism tests
compare sim-scope snapshots.
"""

from __future__ import annotations

import bisect
from typing import Iterable

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "SCOPE_SIM",
    "SCOPE_PROCESS",
    "Family",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_FAMILY",
    "NULL_REGISTRY",
    "get_registry",
    "enable",
    "disable",
    "telemetry_enabled",
]

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

SCOPE_SIM = "sim"
SCOPE_PROCESS = "process"

SNAPSHOT_FORMAT = 1
"""Version of the snapshot dict layout (also the JSONL schema version)."""

#: default histogram buckets (simulated milliseconds)
DEFAULT_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                   100.0, 250.0, 1000.0)


class _NullFamily:
    """Shared do-nothing metric: every operation is a no-op and returns
    either ``None`` or the singleton itself, so disabled instrumentation
    sites allocate nothing."""

    __slots__ = ()

    def labels(self, *values: object) -> "_NullFamily":
        return self

    def inc(self, amount: float = 1, *label_values: object) -> None:
        pass

    def set(self, value: float, *label_values: object) -> None:
        pass

    def observe(self, value: float, *label_values: object) -> None:
        pass


NULL_FAMILY = _NullFamily()


class _Hist:
    """Mutable histogram state for one labelset."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # last bucket = +Inf
        self.sum = 0.0
        self.count = 0


class Family:
    """One metric family: a name, a kind, and per-labelset samples.

    Sample operations take the label values positionally, in the order
    of ``labelnames`` — e.g. for a counter declared with
    ``labelnames=("algorithm", "variant")``::

        fam.inc(1, "cc", "baseline")

    or bind a labelset once with :meth:`labels` and reuse the handle.
    """

    __slots__ = ("name", "kind", "help", "labelnames", "scope",
                 "buckets", "_samples")

    def __init__(self, name: str, kind: str, help: str,
                 labelnames: tuple[str, ...], scope: str,
                 buckets: tuple[float, ...] | None = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.scope = scope
        self.buckets = tuple(buckets) if buckets is not None else None
        self._samples: dict[tuple[str, ...], object] = {}

    # ------------------------------------------------------------------
    def _key(self, label_values: tuple[object, ...]) -> tuple[str, ...]:
        if len(label_values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes {len(self.labelnames)} "
                f"label value(s) {self.labelnames}, got "
                f"{len(label_values)}"
            )
        return tuple(str(v) for v in label_values)

    def labels(self, *values: object) -> "_Bound":
        return _Bound(self, self._key(values))

    def inc(self, amount: float = 1, *label_values: object) -> None:
        if self.kind not in (COUNTER, GAUGE):
            raise ValueError(f"cannot inc {self.kind} {self.name!r}")
        if self.kind == COUNTER and amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        key = self._key(label_values)
        self._samples[key] = self._samples.get(key, 0) + amount

    def set(self, value: float, *label_values: object) -> None:
        if self.kind != GAUGE:
            raise ValueError(f"cannot set {self.kind} {self.name!r}")
        self._samples[self._key(label_values)] = value

    def observe(self, value: float, *label_values: object) -> None:
        if self.kind != HISTOGRAM:
            raise ValueError(f"cannot observe {self.kind} {self.name!r}")
        key = self._key(label_values)
        hist = self._samples.get(key)
        if hist is None:
            hist = self._samples[key] = _Hist(len(self.buckets))
        hist.counts[bisect.bisect_left(self.buckets, value)] += 1
        hist.sum += value
        hist.count += 1

    # ------------------------------------------------------------------
    def value(self, *label_values: object) -> float:
        """Current value of one labelset (0 when never touched)."""
        if self.kind == HISTOGRAM:
            raise ValueError("use hist() for histograms")
        return self._samples.get(self._key(label_values), 0)

    def hist(self, *label_values: object) -> _Hist | None:
        return self._samples.get(self._key(label_values))

    def samples(self) -> list[tuple[tuple[str, ...], object]]:
        """(label values, value-or-_Hist) pairs, sorted by labels."""
        return sorted(self._samples.items())

    def __len__(self) -> int:
        return len(self._samples)


class _Bound:
    """A family bound to one labelset (prometheus-client style)."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: Family, key: tuple[str, ...]) -> None:
        self._family = family
        self._key = key

    def inc(self, amount: float = 1) -> None:
        self._family.inc(amount, *self._key)

    def set(self, value: float) -> None:
        self._family.set(value, *self._key)

    def observe(self, value: float) -> None:
        self._family.observe(value, *self._key)


class MetricsRegistry:
    """A process-local collection of metric families.

    ``counter``/``gauge``/``histogram`` declare-or-fetch a family:
    re-declaring with the same name returns the existing family (and
    rejects a kind or labelnames mismatch), so instrumentation sites
    can declare lazily at the point of use.
    """

    enabled = True

    def __init__(self) -> None:
        self._families: dict[str, Family] = {}

    # ------------------------------------------------------------------
    def _family(self, name: str, kind: str, help: str,
                labelnames: Iterable[str], scope: str,
                buckets: tuple[float, ...] | None = None) -> Family:
        labelnames = tuple(labelnames)
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind or fam.labelnames != labelnames:
                raise ValueError(
                    f"metric {name!r} re-declared as {kind}{labelnames}; "
                    f"existing is {fam.kind}{fam.labelnames}"
                )
            return fam
        fam = Family(name, kind, help, labelnames, scope, buckets)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = (),
                scope: str = SCOPE_SIM) -> Family:
        return self._family(name, COUNTER, help, labelnames, scope)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = (),
              scope: str = SCOPE_SIM) -> Family:
        return self._family(name, GAUGE, help, labelnames, scope)

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = (),
                  scope: str = SCOPE_SIM,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Family:
        fam = self._family(name, HISTOGRAM, help, labelnames, scope,
                           buckets=tuple(buckets))
        if fam.buckets != tuple(buckets):
            raise ValueError(
                f"histogram {name!r} re-declared with different buckets")
        return fam

    # ------------------------------------------------------------------
    def families(self, scope: str | None = None) -> list[Family]:
        """All families (optionally filtered by scope), sorted by name."""
        fams = sorted(self._families.values(), key=lambda f: f.name)
        if scope is not None:
            fams = [f for f in fams if f.scope == scope]
        return fams

    def get(self, name: str) -> Family | None:
        return self._families.get(name)

    def clear(self) -> None:
        self._families.clear()

    def __len__(self) -> int:
        return len(self._families)

    # ------------------------------------------------------------------
    # snapshot / merge — the pool workers' shipping format
    # ------------------------------------------------------------------
    def snapshot(self, scope: str | None = None) -> dict:
        """A picklable/JSON-able copy of the registry state.

        Families are sorted by name and samples by label values, so two
        registries with equal content produce byte-equal snapshots —
        the property the parallel-determinism tests assert on.
        """
        families = []
        for fam in self.families(scope):
            samples = []
            for key, value in fam.samples():
                if fam.kind == HISTOGRAM:
                    samples.append({
                        "labels": list(key),
                        "counts": list(value.counts),
                        "sum": value.sum,
                        "count": value.count,
                    })
                else:
                    samples.append({"labels": list(key), "value": value})
            families.append({
                "name": fam.name,
                "kind": fam.kind,
                "help": fam.help,
                "labelnames": list(fam.labelnames),
                "scope": fam.scope,
                "buckets": (list(fam.buckets)
                            if fam.buckets is not None else None),
                "samples": samples,
            })
        return {"format": SNAPSHOT_FORMAT, "families": families}

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms accumulate; gauges take the snapshot's
        value (last write wins, in merge order).  Merging worker
        snapshots in submission order therefore reconstructs exactly
        the sequence of writes the serial path would have performed.
        """
        if snap.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported telemetry snapshot format "
                f"{snap.get('format')!r} (expected {SNAPSHOT_FORMAT})")
        for fdata in snap.get("families", []):
            kind = fdata["kind"]
            buckets = fdata.get("buckets")
            fam = self._family(
                fdata["name"], kind, fdata.get("help", ""),
                tuple(fdata.get("labelnames", ())),
                fdata.get("scope", SCOPE_SIM),
                buckets=tuple(buckets) if buckets else None)
            for sample in fdata.get("samples", []):
                key = tuple(sample["labels"])
                if kind == HISTOGRAM:
                    hist = fam._samples.get(key)
                    if hist is None:
                        hist = fam._samples[key] = _Hist(len(fam.buckets))
                    counts = sample["counts"]
                    if len(counts) != len(hist.counts):
                        raise ValueError(
                            f"histogram {fam.name!r} bucket count "
                            "mismatch in snapshot")
                    for i, c in enumerate(counts):
                        hist.counts[i] += c
                    hist.sum += sample["sum"]
                    hist.count += sample["count"]
                elif kind == COUNTER:
                    fam._samples[key] = (fam._samples.get(key, 0)
                                         + sample["value"])
                else:
                    fam._samples[key] = sample["value"]


class NullRegistry:
    """The disabled registry: every declaration returns the shared
    :data:`NULL_FAMILY` no-op."""

    enabled = False

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = (),
                scope: str = SCOPE_SIM) -> _NullFamily:
        return NULL_FAMILY

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = (),
              scope: str = SCOPE_SIM) -> _NullFamily:
        return NULL_FAMILY

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = (),
                  scope: str = SCOPE_SIM,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> _NullFamily:
        return NULL_FAMILY

    def families(self, scope: str | None = None) -> list:
        return []

    def get(self, name: str) -> None:
        return None

    def snapshot(self, scope: str | None = None) -> dict:
        return {"format": SNAPSHOT_FORMAT, "families": []}

    def merge(self, snap: dict) -> None:
        pass

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()

_REGISTRY: MetricsRegistry | NullRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The active registry (the null registry when telemetry is off).

    Instrumentation sites call this at the point of use — never cache
    the result across calls, or an ``enable()`` after import would be
    invisible.
    """
    return _REGISTRY


def telemetry_enabled() -> bool:
    return _REGISTRY.enabled


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the active registry."""
    global _REGISTRY
    _REGISTRY = registry if registry is not None else MetricsRegistry()
    return _REGISTRY


def disable() -> None:
    """Restore the null registry (the default)."""
    global _REGISTRY
    _REGISTRY = NULL_REGISTRY
