"""repro.telemetry — metrics, span tracing, and exporters.

The observability layer of the stack: a process-local registry of
labelled counters/gauges/histograms (:mod:`repro.telemetry.metrics`),
hierarchical wall-clock + simulated-clock spans
(:mod:`repro.telemetry.spans`), and JSONL / Prometheus / console
exporters with a ``snapshot()``/``merge()`` pair that lets pool workers
ship their registries back to the parent
(:mod:`repro.telemetry.export`).

Disabled by default; the disabled path is a true no-op (module-level
null sinks, zero allocations), so study outputs are bit-identical with
telemetry off.  Enable for a scope::

    from repro import telemetry

    with telemetry.session() as (registry, spans):
        study.speedup_table("titanv", ["cc"], ["internet"])
        print(telemetry.export.to_console(registry))

or globally (the CLI's ``--telemetry`` / the bench harness's
``REPRO_TELEMETRY`` knob)::

    registry, spans = telemetry.enable()
    ...
    telemetry.export.write_jsonl("out.jsonl", registry, spans)
    telemetry.disable()

See ``docs/observability.md`` for the metric catalog and how the
L1-hit-rate metrics reproduce the paper's Section VI.A explanation.
"""

from __future__ import annotations

import contextlib

from repro.telemetry import export, metrics, spans
from repro.telemetry.metrics import (
    MetricsRegistry,
    get_registry,
    telemetry_enabled,
)
from repro.telemetry.spans import SpanRecorder, get_spans

__all__ = [
    "metrics",
    "spans",
    "export",
    "MetricsRegistry",
    "SpanRecorder",
    "get_registry",
    "get_spans",
    "telemetry_enabled",
    "enable",
    "disable",
    "session",
    "span",
]


def enable(registry: MetricsRegistry | None = None,
           recorder: SpanRecorder | None = None
           ) -> tuple[MetricsRegistry, SpanRecorder]:
    """Enable metrics *and* spans; returns (registry, span recorder)."""
    return metrics.enable(registry), spans.enable(recorder)


def disable() -> None:
    """Restore the no-op null sinks (the default state)."""
    metrics.disable()
    spans.disable()


@contextlib.contextmanager
def session(registry: MetricsRegistry | None = None,
            recorder: SpanRecorder | None = None):
    """Enable telemetry for a ``with`` block, restoring the previous
    sinks on exit (tests and examples use this)."""
    prev_registry = metrics._REGISTRY
    prev_spans = spans._SPANS
    try:
        yield enable(registry, recorder)
    finally:
        metrics._REGISTRY = prev_registry
        spans._SPANS = prev_spans


def span(name: str, **attrs: object):
    """Open a span on the active recorder (no-op context when off)."""
    return get_spans().span(name, **attrs)
