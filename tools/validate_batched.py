"""Validate the batched-tier bit-identity invariant (the CI batched gate).

The batched warp-wide tier (:mod:`repro.gpu.batch`) is only allowed to
exist because it changes *nothing observable*.  This gate proves it
end to end, with the batched tier forced on globally:

1. **SIMT differential** — every algorithm (cc/gc/mis/mst/scc/apsp,
   both variants where applicable) run on the interpreter and on the
   batched tier: outputs and full access-event streams identical, and
   the batched tier actually engaged (no silent interpreter fallback).
2. **Memory fingerprint** — a manual CC launch sequence with arrays
   left live: ``GlobalMemory.fingerprint()`` and the aggregated
   ``LaunchStats`` identical across tiers.
3. **Recorder differential** — ``record_trace`` under both recorder
   tiers for every algorithm x variant: ``AccessStats`` (including
   contended-atomic counts), output fingerprints, and staleness classes
   identical.
4. **Verification tools keep the interpreter** — with the engine forced
   to ``batched``, race detection (RandomScheduler) and systematic DPOR
   exploration (step probes, replay schedulers) must still run on the
   scalar interpreter, and must still find the seeded races.

Usage::

    PYTHONPATH=src python tools/validate_batched.py

Exit status 0 when every invariant holds, 1 with a diagnostic.
"""

from __future__ import annotations

import sys

import numpy as np


def _simt_differential() -> str | None:
    from repro.algorithms import apsp, cc, gc, mis, mst, scc
    from repro.core.variants import Variant
    from repro.gpu.memory import GlobalMemory
    from repro.gpu.simt import SimtExecutor
    from repro.graphs import generators as gen

    und = gen.random_uniform(24, 3.0, seed=5, name="tiny")
    drt = gen.directed_powerlaw(20, 2.5, seed=3, name="tinyd")
    runs = []
    for variant in Variant:
        runs += [
            (f"cc/{variant.value}", lambda ex, v=variant: cc.run_simt(und, v, executor=ex)),
            (f"gc/{variant.value}", lambda ex, v=variant: gc.run_simt(und, v, executor=ex)),
            (f"mis/{variant.value}", lambda ex, v=variant: mis.run_simt(und, v, executor=ex)),
            (f"mst/{variant.value}", lambda ex, v=variant: mst.run_simt(
                und.with_random_weights(1), v, executor=ex)),
            (f"scc/{variant.value}", lambda ex, v=variant: scc.run_simt(drt, v, executor=ex)),
        ]
    runs += [("apsp", lambda ex: apsp.run_simt(und, executor=ex)),
             ("apsp_shared", lambda ex: apsp.run_simt_shared(und, executor=ex))]

    for name, run in runs:
        ex_i = SimtExecutor(GlobalMemory(), batch=False)
        ex_b = SimtExecutor(GlobalMemory(), batch=True)
        out_i, _ = run(ex_i)
        out_b, _ = run(ex_b)
        if not np.array_equal(np.asarray(out_i), np.asarray(out_b)):
            return f"{name}: outputs differ between tiers"
        if ex_i.events != ex_b.events:
            for a, b in zip(ex_i.events, ex_b.events):
                if a != b:
                    return (f"{name}: event streams diverge at step "
                            f"{a.step}: {a} vs {b}")
            return (f"{name}: event counts differ "
                    f"({len(ex_i.events)} vs {len(ex_b.events)})")
        if ex_b.batch_stats.batched_launches == 0:
            return f"{name}: batched tier never engaged"
    return None


def _fingerprint_check() -> str | None:
    from repro.algorithms import cc
    from repro.core.variants import Variant
    from repro.gpu.accesses import DType
    from repro.gpu.memory import GlobalMemory
    from repro.gpu.simt import SimtExecutor
    from repro.gpu.timing import stats_from_launches
    from repro.graphs import generators as gen

    graph = gen.random_uniform(48, 3.0, seed=9, name="fp")
    results = []
    for batch in (False, True):
        mem = GlobalMemory()
        ex = SimtExecutor(mem, batch=batch)
        n = graph.num_vertices
        offsets = mem.alloc("cc_offsets", n + 1, DType.I64)
        indices = mem.alloc("cc_indices", max(1, graph.num_edges), DType.I32)
        label = mem.alloc("cc_label", n, DType.I32)
        changed = mem.alloc("cc_changed", 1, DType.I32)
        mem.upload(offsets, graph.row_offsets)
        mem.upload(indices, graph.col_indices)
        mem.upload(label, np.arange(n))
        kernel = cc.make_cc_kernel(Variant.RACE_FREE)
        launches = []
        while True:
            mem.element_write(changed, 0, 0)
            launches.append(ex.launch(kernel, n, offsets, indices,
                                      label, changed))
            if mem.element_read(changed, 0) == 0:
                break
        results.append((mem.fingerprint(), stats_from_launches(launches)))
    if results[0][0] != results[1][0]:
        return "GlobalMemory.fingerprint() differs between tiers"
    if results[0][1] != results[1][1]:
        return (f"aggregated LaunchStats differ: {results[0][1]} vs "
                f"{results[1][1]}")
    return None


def _recorder_differential() -> str | None:
    from repro.core.variants import Variant, list_algorithms
    from repro.graphs.suite import load_suite_graph, suite_names
    from repro.perf.engine import record_trace

    graph = load_suite_graph("internet", 1)
    directed = load_suite_graph(suite_names(directed=True)[0], 1)
    for algo in list_algorithms():
        g = directed if algo.directed else graph
        for variant in Variant:
            t_i = record_trace(algo, g, variant, 3, 2, engine="interp")
            t_b = record_trace(algo, g, variant, 3, 2, engine="batched")
            tag = f"{algo.key}/{variant.value}"
            if t_i.stats != t_b.stats:
                return f"{tag}: AccessStats differ between recorder tiers"
            if t_i.output_fp != t_b.output_fp:
                return f"{tag}: output fingerprints differ"
            if t_i.staleness_rounds != t_b.staleness_rounds:
                return f"{tag}: staleness classes differ"
    return None


def _verification_forces_interpreter() -> str | None:
    from repro.algorithms import cc
    from repro.check import check
    from repro.core.variants import Variant
    from repro.gpu import tiers
    from repro.gpu.interleave import RandomScheduler
    from repro.gpu.racecheck import RaceDetector

    tiers.set_engine(tiers.ENGINE_BATCHED)
    try:
        from repro.graphs import generators as gen
        graph = gen.random_uniform(24, 3.0, seed=5, name="tiny")
        _, ex = cc.run_simt(graph, Variant.BASELINE,
                            scheduler=RandomScheduler(7))
        if ex.batch_stats.batched_launches:
            return "racecheck run used the batched tier"
        if not RaceDetector().check(ex):
            return "racecheck under forced-batched engine found no races"

        report = check("lost_update", variant=Variant.BASELINE,
                       budget="smoke")
        if report.ok:
            return "DPOR under forced-batched engine missed the race"
    finally:
        tiers.set_engine(tiers.ENGINE_AUTO)
    return None


def main() -> int:
    gates = [
        ("SIMT differential", _simt_differential),
        ("memory fingerprint", _fingerprint_check),
        ("recorder differential", _recorder_differential),
        ("verification tier forcing", _verification_forces_interpreter),
    ]
    for name, gate in gates:
        print(f"[validate_batched] {name} ...", flush=True)
        problem = gate()
        if problem:
            print(f"FAIL ({name}): {problem}")
            return 1
        print(f"[validate_batched] {name} OK")
    print("batched-tier bit-identity invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
