"""Validate the sweep service end to end (the CI service gate).

Drives a real ``python -m repro serve`` subprocess the way an unlucky
deployment would:

1. starts the server with a host fault plan installed — every
   first-generation pool worker is SIGKILLed and 40% of trace-cache
   writes are torn — plus a checkpoint and a disk trace cache;
2. submits the same study from two concurrent clients and checks that
   every cell streams back ``ok`` and that the pair coalesced onto a
   single grid execution;
3. fetches ``/v1/results`` and asserts the accumulated raw runtimes
   are byte-identical (canonically ordered) to an uninjected, serial,
   cache-less offline sweep of the same cells run in this process;
4. sends SIGTERM while a third client is mid-stream and asserts the
   server drains within the deadline, exits 0, and leaves a checkpoint
   a fresh study can load;
5. (fleet smoke) repeats the drive against ``--workers 2`` with a
   shared ``--store`` under the same kill plan: every first-generation
   fleet worker is killed, cells must fail over to respawned workers,
   results must stay byte-identical to the offline sweep, the store
   must hold every published cell, and SIGTERM must still drain
   cleanly.

Usage::

    PYTHONPATH=src python tools/validate_service.py [--seed S]

Exit status 0 when every invariant holds, 1 with a diagnostic.
"""

from __future__ import annotations

import argparse
import json
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

ALGOS = ["cc", "mis"]
INPUTS = ["internet"]
DEVICE = "titanv"
REPS = 1


def _request(port: int, method: str, path: str,
             body: dict | None = None, timeout: float = 120.0) -> bytes:
    payload = b"" if body is None else json.dumps(body).encode()
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    try:
        sock.sendall((f"{method} {path} HTTP/1.1\r\nHost: validate\r\n"
                      f"Content-Length: {len(payload)}\r\n\r\n"
                      ).encode() + payload)
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    finally:
        sock.close()
    return b"".join(chunks)


def _dechunk(body: bytes) -> list[dict]:
    out = []
    i = 0
    while i < len(body):
        j = body.index(b"\r\n", i)
        size = int(body[i:j], 16)
        if size == 0:
            break
        out.append(body[j + 2:j + 2 + size])
        i = j + 2 + size + 2
    return [json.loads(line)
            for line in b"".join(out).splitlines() if line]


def _study_records(port: int, tenant: str) -> list[dict]:
    raw = _request(port, "POST", "/v1/study",
                   {"algorithms": ALGOS, "inputs": INPUTS,
                    "device": DEVICE, "tenant": tenant,
                    "deadline_s": 300})
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = head.split(b" ", 2)[1]
    if status != b"200":
        raise RuntimeError(f"{tenant}: study returned {status!r}")
    return _dechunk(rest)


def _canonical(payload: dict) -> bytes:
    results = sorted(
        payload.get("results", []),
        key=lambda r: (r.get("algorithm", ""), r.get("input", ""),
                       r.get("device", ""), r.get("variant", "")))
    return json.dumps({"reps": payload.get("reps"),
                       "scale": payload.get("scale"),
                       "results": results}, sort_keys=True).encode()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0,
                        help="host fault plan seed")
    parser.add_argument("--drain-deadline", type=float, default=30.0)
    args = parser.parse_args(argv)

    workdir = Path(tempfile.mkdtemp(prefix="repro-validate-service-"))
    ckpt = workdir / "serve.ckpt"
    n_cells = len(ALGOS) * len(INPUTS)

    # the truth: an uninjected serial offline sweep in this process
    from repro.core.resilience import ResilientStudy

    offline = ResilientStudy(reps=REPS)
    result = offline.sweep(DEVICE, ALGOS, INPUTS, jobs=1)
    if result.failures:
        print("FAIL: offline baseline sweep failed", file=sys.stderr)
        return 1
    baseline = _canonical({"reps": offline.reps, "scale": offline.scale,
                           "results": offline._result_records()})

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--reps", str(REPS), "--retries", "0", "--jobs", "2",
         "--trace-cache", str(workdir / "traces"),
         "--checkpoint", str(ckpt),
         "--inject-host", "kill=1.0,torn=0.4",
         "--host-targets", "trace-*.json",
         "--host-seed", str(args.seed),
         "--disrupt-generations", "1",
         "--drain-deadline", str(args.drain_deadline)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        banner = server.stdout.readline().strip()
        if "listening on" not in banner:
            raise RuntimeError(f"unexpected banner {banner!r}")
        port = int(banner.rsplit(":", 1)[1])
        print(f"ok   server up on port {port} "
              "(worker kills + torn writes injected)")

        # two concurrent clients, one cold study
        records: dict[str, list[dict] | Exception] = {}

        def client(tenant: str) -> None:
            try:
                records[tenant] = _study_records(port, tenant)
            except Exception as exc:  # surfaced below
                records[tenant] = exc

        threads = [threading.Thread(target=client, args=(t,))
                   for t in ("alice", "bob")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        for tenant in ("alice", "bob"):
            got = records.get(tenant)
            if isinstance(got, Exception) or got is None:
                print(f"FAIL: client {tenant}: {got!r}", file=sys.stderr)
                return 1
            cells = [r for r in got if "cell" in r]
            bad = [r for r in cells if r.get("status") != "ok"]
            if len(cells) != n_cells or bad:
                print(f"FAIL: {tenant} got {len(cells)} cells, "
                      f"{len(bad)} not ok: {bad}", file=sys.stderr)
                return 1
        print(f"ok   two concurrent clients, all {n_cells} cells ok")

        # byte-identity against the offline sweep
        raw = _request(port, "GET", "/v1/results")
        server_payload = json.loads(raw.partition(b"\r\n\r\n")[2])
        if len(server_payload.get("results", [])) != 2 * n_cells:
            print("FAIL: server computed "
                  f"{len(server_payload.get('results', []))} variant "
                  f"records for two clients, expected {2 * n_cells} "
                  "(coalescing broke)", file=sys.stderr)
            return 1
        if _canonical(server_payload) != baseline:
            print("FAIL: server results diverge from the uninjected "
                  "offline sweep", file=sys.stderr)
            return 1
        print("ok   results byte-identical to the offline sweep")

        # SIGTERM mid-stream: drain within the deadline
        third: dict[str, object] = {}

        def carol() -> None:
            try:
                third["done"] = _study_records(port, "carol")
            except Exception as exc:
                third["cut_off"] = exc

        streamer = threading.Thread(target=carol)
        streamer.start()
        time.sleep(0.05)
        sent = time.monotonic()
        server.send_signal(signal.SIGTERM)
        try:
            out, err = server.communicate(
                timeout=args.drain_deadline + 15.0)
        except subprocess.TimeoutExpired:
            print("FAIL: server never exited after SIGTERM",
                  file=sys.stderr)
            return 1
        drain_s = time.monotonic() - sent
        streamer.join(timeout=10)
        if server.returncode != 0:
            print(f"FAIL: drain exited {server.returncode}; "
                  f"stderr: {err[-500:]}", file=sys.stderr)
            return 1
        if drain_s > args.drain_deadline:
            print(f"FAIL: drain took {drain_s:.1f}s, over the "
                  f"{args.drain_deadline:.0f}s deadline", file=sys.stderr)
            return 1
        if "drained cleanly" not in out:
            print(f"FAIL: missing drain banner in {out!r}",
                  file=sys.stderr)
            return 1
        print(f"ok   SIGTERM drained cleanly in {drain_s:.2f}s")

        # the drain's checkpoint must load into a fresh study
        loader = ResilientStudy(reps=REPS, checkpoint=ckpt)
        n_res, n_fail = loader.load_checkpoint()
        if n_res < 2 * n_cells or n_fail:
            print(f"FAIL: checkpoint loads {n_res} results / {n_fail} "
                  "failures", file=sys.stderr)
            return 1
        print(f"ok   drain checkpoint loads {n_res} results")
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate()

    rc = _fleet_smoke(workdir, baseline, n_cells, args)
    if rc:
        return rc

    print("service validation: coalescing, byte-identity, fleet "
          "failover, and SIGTERM drain hold under injected host faults")
    return 0


def _fleet_smoke(workdir: Path, baseline: bytes, n_cells: int,
                 args) -> int:
    """Phase 5: the supervised worker fleet under the same kill plan."""
    fleet_dir = workdir / "fleet"
    store_dir = fleet_dir / "store"
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--reps", str(REPS), "--retries", "0",
         "--workers", "2", "--store", str(store_dir),
         "--trace-cache", str(fleet_dir / "traces"),
         "--checkpoint", str(fleet_dir / "fleet.ckpt"),
         "--inject-host", "kill=1.0,torn=0.4",
         "--host-targets", "trace-*.json",
         "--host-seed", str(args.seed),
         "--disrupt-generations", "1",
         "--drain-deadline", str(args.drain_deadline)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        banner = server.stdout.readline().strip()
        if "listening on" not in banner:
            raise RuntimeError(f"unexpected fleet banner {banner!r}")
        port = int(banner.rsplit(":", 1)[1])
        print(f"ok   fleet server up on port {port} "
              "(2 workers, gen-0 kills injected)")

        records: dict[str, list[dict] | Exception] = {}

        def client(tenant: str) -> None:
            try:
                records[tenant] = _study_records(port, tenant)
            except Exception as exc:  # surfaced below
                records[tenant] = exc

        threads = [threading.Thread(target=client, args=(t,))
                   for t in ("alice", "bob")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        for tenant in ("alice", "bob"):
            got = records.get(tenant)
            if isinstance(got, Exception) or got is None:
                print(f"FAIL: fleet client {tenant}: {got!r}",
                      file=sys.stderr)
                return 1
            cells = [r for r in got if "cell" in r]
            bad = [r for r in cells if r.get("status") != "ok"]
            if len(cells) != n_cells or bad:
                print(f"FAIL: fleet {tenant} got {len(cells)} cells, "
                      f"{len(bad)} not ok: {bad}", file=sys.stderr)
                return 1
        print(f"ok   fleet served all {n_cells} cells to both clients")

        raw = _request(port, "GET", "/readyz")
        ready = json.loads(raw.partition(b"\r\n\r\n")[2])
        fleet = ready.get("fleet") or {}
        if len(fleet.get("workers", [])) != 2:
            print(f"FAIL: /readyz fleet block: {fleet!r}",
                  file=sys.stderr)
            return 1
        if fleet.get("respawns", 0) < 1 or fleet.get(
                "redispatches", 0) < 1:
            print("FAIL: the kill plan never cost a fleet worker "
                  f"(respawns={fleet.get('respawns')}, "
                  f"redispatches={fleet.get('redispatches')})",
                  file=sys.stderr)
            return 1
        print(f"ok   failover exercised: respawns={fleet['respawns']} "
              f"redispatches={fleet['redispatches']}")

        raw = _request(port, "GET", "/v1/results")
        server_payload = json.loads(raw.partition(b"\r\n\r\n")[2])
        if _canonical(server_payload) != baseline:
            print("FAIL: fleet results diverge from the uninjected "
                  "offline sweep", file=sys.stderr)
            return 1
        print("ok   fleet results byte-identical to the offline sweep")

        published = list(store_dir.glob("cell-*.json"))
        if len(published) != n_cells:
            print(f"FAIL: store published {len(published)} records, "
                  f"expected {n_cells}", file=sys.stderr)
            return 1
        print(f"ok   store holds {len(published)} published cells")

        sent = time.monotonic()
        server.send_signal(signal.SIGTERM)
        try:
            out, err = server.communicate(
                timeout=args.drain_deadline + 15.0)
        except subprocess.TimeoutExpired:
            print("FAIL: fleet server never exited after SIGTERM",
                  file=sys.stderr)
            return 1
        drain_s = time.monotonic() - sent
        if server.returncode != 0:
            print(f"FAIL: fleet drain exited {server.returncode}; "
                  f"stderr: {err[-500:]}", file=sys.stderr)
            return 1
        if "drained cleanly" not in out:
            print(f"FAIL: missing fleet drain banner in {out!r}",
                  file=sys.stderr)
            return 1
        print(f"ok   fleet SIGTERM drained cleanly in {drain_s:.2f}s")
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate()
    return 0


if __name__ == "__main__":
    sys.exit(main())
