"""Validate exported telemetry artifacts (the CI smoke gate).

Checks a telemetry JSONL export — and optionally a Prometheus
text-format export — against the schema rules in
:mod:`repro.telemetry.export`:

* JSONL: header record first, known record types only, metric records
  carrying the fields their kind requires, histogram bucket counts
  consistent, span records well-formed.
* Prometheus: parseable ``text/plain; version=0.0.4`` with matching
  TYPE declarations and monotone cumulative buckets.

Usage::

    PYTHONPATH=src python tools/validate_telemetry.py out.jsonl \
        [--prom out.prom] [--require-metric NAME ...]

Exit status 0 when everything validates, 1 with a diagnostic on the
first violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    from repro.telemetry.export import (
        validate_jsonl_lines,
        validate_prometheus_text,
    )

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", help="telemetry JSONL export to check")
    parser.add_argument("--prom", default=None,
                        help="Prometheus text export to check as well")
    parser.add_argument("--require-metric", action="append", default=[],
                        metavar="NAME",
                        help="fail unless the JSONL contains this metric "
                             "family (repeatable)")
    args = parser.parse_args(argv)

    try:
        lines = Path(args.jsonl).read_text().splitlines()
        n_records = validate_jsonl_lines(lines)
        names = {json.loads(line).get("name") for line in lines[1:] if line}
        missing = [m for m in args.require_metric if m not in names]
        if missing:
            print(f"error: {args.jsonl} lacks required metric "
                  f"families: {', '.join(missing)}", file=sys.stderr)
            return 1
        print(f"{args.jsonl}: {n_records} records OK")
        if args.prom:
            n_samples = validate_prometheus_text(
                Path(args.prom).read_text())
            print(f"{args.prom}: {n_samples} samples OK")
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
