"""Validate the memory-model zoo (the CI litmus gate).

Runs the full litmus corpus under every canonical model and checks the
issue's acceptance bar:

1. **Completeness** — every (test, model) cell finishes its DPOR
   exploration within budget (no truncated cells: a truncated cell
   proves nothing about forbidden outcomes).
2. **Soundness** — no cell ever observes an outcome its model forbids.
3. **Precision** — every complete cell observes *all* outcomes its
   model allows, so the models are exactly as weak as advertised (a
   model that silently strengthened would pass soundness alone).
4. **Default identity** — the executor's default model is the paper's
   relaxed-GPU semantics with eager stores: a run with the explicit
   default is event-identical to a model-free executor.

Usage::

    PYTHONPATH=src python tools/validate_litmus.py [--models M1,M2]

Exit status 0 when every check holds, 1 with a diagnostic.
"""

from __future__ import annotations

import argparse
import sys


def _check_corpus(models: list[str] | None) -> list[str]:
    from repro.memmodel.litmus import format_table, run_corpus

    results = run_corpus(models=models)
    print(format_table(results))
    print()

    problems: list[str] = []
    for r in results:
        cell = f"{r.test}/{r.model}"
        if not r.complete:
            problems.append(f"{cell}: exploration truncated "
                            f"({r.schedules} schedules)")
        if r.forbidden_observed:
            problems.append(f"{cell}: forbidden outcome(s) observed: "
                            f"{sorted(r.forbidden_observed)}")
        if r.complete and r.missing:
            problems.append(f"{cell}: allowed outcome(s) never reached: "
                            f"{sorted(r.missing)}")
    return problems


def _check_default_identity() -> list[str]:
    import numpy as np

    from repro.algorithms import cc
    from repro.core.variants import Variant
    from repro.gpu.memory import GlobalMemory
    from repro.gpu.simt import SimtExecutor
    from repro.graphs import generators as gen

    graph = gen.random_uniform(24, 3.0, seed=5)
    ex_plain = SimtExecutor(GlobalMemory(), record_events=True)
    ex_model = SimtExecutor(GlobalMemory(), record_events=True,
                            memory_model="relaxed_gpu:eager")
    out_p, _ = cc.run_simt(graph, Variant.BASELINE, executor=ex_plain)
    out_m, _ = cc.run_simt(graph, Variant.BASELINE, executor=ex_model)
    problems: list[str] = []
    if not np.array_equal(out_p, out_m):
        problems.append("default model changed cc output")
    if ex_plain.events != ex_model.events:
        problems.append("default model changed the access-event stream")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--models", default=None,
                        help="comma-separated model specs "
                             "(default: sc,tso,relaxed_gpu,ptx)")
    args = parser.parse_args(argv)
    models = args.models.split(",") if args.models else None

    problems = _check_corpus(models)
    problems += _check_default_identity()

    if problems:
        print(f"\nFAIL: {len(problems)} problem(s)")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("\nOK: litmus corpus complete, sound, and precise; "
          "default model is identity")
    return 0


if __name__ == "__main__":
    sys.exit(main())
