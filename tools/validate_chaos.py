"""Validate the byte-identical-recovery invariant (the CI chaos gate).

Two checks, both against a real mini-sweep:

1. **No-op injection** — with a host fault plan installed at rate 0 for
   every kind, ``save_results`` output must be byte-identical to a run
   with no plan installed at all: the injection machinery itself must
   cost nothing and change nothing when it never fires.
2. **Flagship recovery** — the combined chaos scenario (worker
   SIGKILLs + torn trace-cache writes + one externally corrupted
   checkpoint generation, resumed to completion) must reach full
   coverage with ``save_results`` byte-identical to the uninjected
   serial baseline.

Usage::

    PYTHONPATH=src python tools/validate_chaos.py [--jobs N] [--seed S]

Exit status 0 when both invariants hold, 1 with a diagnostic.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path


def _noop_plan_check(workdir: Path) -> str | None:
    """Rate-0 plan installed vs no plan: outputs must match exactly."""
    from repro.core import hostfaults
    from repro.core.chaos import ALGOS, DEVICE, INPUTS
    from repro.core.hostfaults import HostFaultKind, HostFaultPlan, HostFaultSpec
    from repro.core.resilience import ResilientStudy

    inputs = list(INPUTS[:1])
    bare = ResilientStudy(reps=1, trace_cache=False)
    bare.sweep(DEVICE, list(ALGOS), inputs, jobs=1)
    bare.save_results(workdir / "bare.json")

    plan = HostFaultPlan(
        [HostFaultSpec(kind, 0.0) for kind in HostFaultKind], seed=0)
    with hostfaults.installed(plan):
        armed = ResilientStudy(reps=1, trace_cache=False)
        armed.sweep(DEVICE, list(ALGOS), inputs, jobs=1)
        armed.save_results(workdir / "armed.json")

    if (workdir / "bare.json").read_bytes() != \
            (workdir / "armed.json").read_bytes():
        return ("rate-0 host fault plan changed save_results output — "
                "the disabled injector is not a no-op")
    return None


def _flagship_check(workdir: Path, jobs: int, seed: int) -> str | None:
    """The combined kill + torn + checkpoint-corruption scenario."""
    from repro.core.chaos import (
        ALGOS,
        DEVICE,
        INPUTS,
        run_scenario,
        scenario_suite,
    )
    from repro.core.resilience import ResilientStudy

    inputs = list(INPUTS[:1])
    baseline_study = ResilientStudy(reps=1, trace_cache=False)
    baseline_study.sweep(DEVICE, list(ALGOS), inputs, jobs=1)
    baseline_study.save_results(workdir / "baseline.json")
    baseline = (workdir / "baseline.json").read_bytes()

    combined = [s for s in scenario_suite(jobs=jobs)
                if s.name == "combined"]
    if not combined:
        return "chaos suite lost its 'combined' flagship scenario"
    outcome = run_scenario(combined[0], baseline, workdir, DEVICE,
                           list(ALGOS), inputs, reps=1, seed=seed)
    if not outcome.ok:
        return f"flagship scenario failed: {outcome.describe()}"
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="pool width for the worker-kill leg")
    parser.add_argument("--seed", type=int, default=0,
                        help="host fault plan seed")
    parser.add_argument("--workdir", default=None,
                        help="keep artifacts here instead of a temp dir")
    args = parser.parse_args(argv)

    workdir = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="repro-validate-chaos-"))
    workdir.mkdir(parents=True, exist_ok=True)

    for label, check in (
            ("no-op injection", lambda: _noop_plan_check(workdir)),
            ("flagship recovery",
             lambda: _flagship_check(workdir, args.jobs, args.seed))):
        error = check()
        if error:
            print(f"FAIL ({label}): {error}", file=sys.stderr)
            return 1
        print(f"ok   {label}")
    print("chaos validation: byte-identical recovery holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
