"""Validate the automated race-repair pipeline (the CI repair gate).

Runs ``repro.repair`` end to end on a representative target slice and
checks the issue's acceptance bar:

1. **Localization** — every racy target yields at least one obligation
   with a stable (label-based) site id.
2. **Verification soundness** — every fix the pipeline accepts is
   DPOR-verified race-free, completes under a deterministic schedule,
   satisfies the algorithm's invariant, and (where the target defines
   a canonical output) matches the hand-written race-free variant's
   output exactly.
3. **Pricing fidelity** — the top-ranked fix's simulated runtime
   matches the hand-written race-free variant within the noise
   tolerance on at least one device.
4. **Rejection coverage** — on the twophase micro-target the barrier
   fix is accepted and the atomic/volatile impostors are rejected, so
   the gate fails if verification ever degenerates to accept-all.

Usage::

    PYTHONPATH=src python tools/validate_repair.py [--budget B] [--tolerance T]

Exit status 0 when every check holds, 1 with a diagnostic.
"""

from __future__ import annotations

import argparse
import sys

TARGETS = ("twophase", "cc", "mis")


def _check_target(name: str, budget: str, tolerance: float) -> list[str]:
    from repro.repair import repair

    problems: list[str] = []
    report = repair(name, budget=budget)
    print(report.render())
    print()

    if not report.obligations:
        problems.append(f"{name}: localization found no obligations")
        return problems
    for ob in report.obligations:
        if "[" in ob.obligation_id:
            problems.append(
                f"{name}: obligation id {ob.obligation_id!r} carries a "
                "byte offset — site ids must be label-stable")

    accepted = report.accepted
    if not accepted:
        problems.append(f"{name}: no candidate fix was accepted")
        return problems
    for verdict in accepted:
        if not (verdict.race_free and verdict.completes
                and verdict.invariant_ok and verdict.output_equivalent):
            problems.append(
                f"{name}: accepted fix {verdict.fixset.describe()!r} "
                f"fails soundness ({verdict.verdict})")

    top = report.top_fix
    if top is None:
        problems.append(f"{name}: accepted fixes but empty ranking")
        return problems
    if top.vs_racefree:
        best = min(abs(r - 1.0) for r in top.vs_racefree.values())
        if best > tolerance:
            problems.append(
                f"{name}: top fix {top.fixset.describe()!r} is "
                f"{best:.1%} off the hand-written race-free runtime "
                f"on every device (tolerance {tolerance:.1%})")
    if name == "twophase":
        if top.fixset.barriers() != frozenset({"twophase.phase"}):
            problems.append(
                "twophase: the minimal barrier fix did not win")
        rejected = [c for c in report.candidates if not c.accepted]
        if not rejected:
            problems.append(
                "twophase: no candidate was rejected — the verifier "
                "is not discriminating")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", default="smoke",
                        choices=("smoke", "default", "deep"))
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed |top-fix/race-free - 1| "
                             "(default 0.05)")
    parser.add_argument("--targets", default=",".join(TARGETS),
                        help="comma-separated repair targets")
    args = parser.parse_args(argv)

    problems: list[str] = []
    for name in args.targets.split(","):
        name = name.strip()
        if name:
            problems.extend(_check_target(name, args.budget,
                                          args.tolerance))

    if problems:
        print("repair validation FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("repair validation OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
